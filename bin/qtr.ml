(* qtr — command-line interface to the rule-testing framework.

     qtr rules                         list transformation rules + patterns
     qtr optimize --sql "SELECT ..."   optimize a SQL query, show plan/RuleSet
     qtr generate --rule JoinCommute   emit a SQL test case for a rule
     qtr generate --pair A,B           ... for a rule pair
     qtr coverage --rules 30           Figure-8-style coverage table
     qtr compress --rules 10 --k 5     compare BASELINE/SMC/TOPK
     qtr validate --rules 10 --k 3     run correctness testing
     qtr validate --inject SelectMerge ... with a buggy rule injected
     qtr reduce --inject SelectMerge --corpus corpus/
                                       minimize + dedup + persist reproducers
     qtr replay --corpus corpus/       re-execute the regression corpus
     qtr discover --alphabet setops    mine/validate/rank/promote rewrite rules
     qtr delta --cache-dir DIR         preview the reusable incremental slice
     qtr stats                         per-rule optimizer metrics table
     qtr profile --jobs 4              in-process span profile of a workload
     qtr report --rules 10 --k 3       one-shot campaign summary (text/JSON)
     qtr bench-diff OLD NEW            regression-gate two bench result files

   Every subcommand accepts --trace FILE to record a Chrome trace-event
   JSONL trace (which also turns metrics collection on); most accept
   --json for machine-readable output. *)

open Cmdliner
open Storage

(* ------------------------------------------------------------------ *)
(* Shared options                                                      *)
(* ------------------------------------------------------------------ *)

let scale_arg =
  Arg.(value & opt float 0.002 & info [ "scale" ] ~docv:"SF" ~doc:"TPC-H scale factor.")

let seed_arg =
  Arg.(value & opt int 2009 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let budget_arg =
  Arg.(
    value
    & opt int 400
    & info [ "budget" ] ~docv:"TREES" ~doc:"Optimizer exploration budget (trees).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a Chrome trace-event JSONL trace of the whole run to $(docv) and \
           enable metrics collection. Load it in chrome://tracing or Perfetto after \
           wrapping in a JSON array: jq -s . $(docv).")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON on stdout.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel phases (suite generation, the edge-cost \
           matrix, validation, reduction, replay). Defaults to the machine's \
           recommended domain count. Results are identical for every $(docv), \
           including 1.")

let pool_of jobs =
  match jobs with
  | None -> Par.Pool.create ()
  | Some j -> Par.Pool.create ~jobs:j ()

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persistent warm-start cache directory. Execution results and §5 edge-cost \
           matrices computed this run are spilled there (atomic, versioned writes) \
           and reused by later runs over an identical catalog/rule-set/suite; stale \
           or corrupt entries are silently ignored. Safe to delete at any time.")

(* The disk tiers key everything by the catalog contents, so a cache
   directory can be shared across scales, seeds and machines: mismatched
   entries simply miss. *)
let setup_cache cache_dir cat =
  match cache_dir with
  | None -> None
  | Some dir ->
    let dc = Diskcache.create ~dir () in
    Executor.Cache.set_disk
      (Some (dc, Printf.sprintf "cat-%x" (Catalog.content_hash cat)));
    Some dc

let incremental_flag =
  Arg.(
    value & flag
    & info [ "incremental" ]
        ~doc:
          "Maintain the pipeline incrementally against the $(b,--cache-dir) manifest: \
           diff the live rule-content fingerprints against the last run's, replay the \
           suite targets and edge-cost matrix cells the diff proves unaffected, and \
           recompute only the stale slice. Results are byte-identical to a cold \
           rebuild at any $(b,--jobs). Requires $(b,--cache-dir).")

let simulate_edit_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "simulate-edit" ] ~docv:"RULE"
        ~doc:
          "Rebuild RULE under a bumped version tag (same name, pattern and behavior, \
           new content fingerprint) before running — the benchmark/CI stand-in for a \
           behavior-preserving refactor of a rule's implementation.")

(* Every generation/compression parameter that shapes the artifacts goes
   into the manifest key (the catalog is hashed in by [Incr.config_key]),
   so runs with different configurations never see each other's
   manifests. *)
let compress_desc ~seed ~n ~k ~pairs ~budget =
  Printf.sprintf "compress|seed=%d|n=%d|k=%d|pairs=%b|budget=%d|extra=2|gen=pattern"
    seed n k pairs budget

let incr_session ~incremental ~disk ~desc fw =
  match (incremental, disk) with
  | false, _ -> None
  | true, None ->
    Printf.eprintf "qtr: --incremental requires --cache-dir\n";
    exit 1
  | true, Some dc -> Some (Core.Incr.start ~dc ~desc fw)

let delta_report_json sess =
  let r = Core.Incr.result sess in
  Obs.Json.Obj
    [ ("cold", Obs.Json.Bool (Core.Incr.cold sess));
      ("full_rebuild", Obs.Json.Bool r.full_rebuild);
      ( "rules_changed",
        Obs.Json.List
          (List.map
             (fun (name, change) ->
               Obs.Json.Obj
                 [ ("rule", Obs.Json.String name);
                   ("change", Obs.Json.String change) ])
             r.rules_changed) );
      ("targets_reused", Obs.Json.Int r.targets_reusable);
      ("targets_total", Obs.Json.Int r.targets_total);
      ("entries_reused", Obs.Json.Int r.entries_reused);
      ("edges_reused", Obs.Json.Int r.edges_reusable);
      ("edges_recomputed", Obs.Json.Int r.edges_recomputed);
      ("edges_total", Obs.Json.Int r.edges_total) ]

let print_delta_summary sess =
  let r = Core.Incr.result sess in
  if Core.Incr.cold sess then
    print_endline "delta: no manifest found — cold rebuild, manifest written"
  else begin
    (match r.rules_changed with
    | [] -> print_endline "delta: rule registry unchanged since last manifest"
    | changed ->
      Printf.printf "delta: %d rule(s) drifted: %s\n" (List.length changed)
        (String.concat ", "
           (List.map (fun (n, c) -> Printf.sprintf "%s (%s)" n c) changed)));
    Printf.printf
      "delta: reused %d/%d targets (%d suite entries), %d/%d edges served warm, %d \
       recomputed%s\n"
      r.targets_reusable r.targets_total r.entries_reused r.edges_reusable
      r.edges_total r.edges_recomputed
      (if r.full_rebuild then " [pattern change or new rule: full rebuild]" else "")
  end

(* Telemetry is off unless asked for: tracing implies metrics, so the
   per-rule tables under `--json`/`qtr stats` line up with the spans. *)
let with_telemetry trace f =
  match trace with
  | None -> f ()
  | Some path ->
    Obs.Metrics.set_enabled true;
    (try Obs.Trace.start path
     with Sys_error e ->
       Printf.eprintf "cannot open trace file: %s\n" e;
       exit 1);
    Fun.protect ~finally:Obs.Trace.stop f

let make_fw ?rules scale budget =
  let cat = Datagen.tpch ~scale () in
  let options = { Optimizer.Engine.default_options with max_trees = budget } in
  Core.Framework.create ~options ?rules cat

(* ------------------------------------------------------------------ *)
(* Attribution rendering (shared by stats / profile / report)          *)
(* ------------------------------------------------------------------ *)

let counter_cell = function Some (Obs.Metrics.Counter c) -> c | _ -> 0

(* Per-worker wall-time decomposition accumulated by [Par.Pool] maps
   since metrics were enabled. Rows with zero wall (labels belonging to
   other metric families) are dropped. *)
type worker_util = {
  wu_worker : string;
  wu_busy : float;
  wu_steal : float;
  wu_idle : float;
  wu_merge : float;
  wu_wall : float;
  wu_tasks : int;
}

let pool_utilization () =
  Obs.Report.label_table
    [ "par.pool.busy_ns"; "par.pool.steal_ns"; "par.pool.idle_ns";
      "par.pool.merge_wait_ns"; "par.pool.wall_ns"; "par.pool.tasks" ]
  |> List.filter_map (fun (label, values) ->
         match values with
         | [ b; s; i; m; w; t ] ->
           let wall = float_of_int (counter_cell w) in
           if wall <= 0.0 && counter_cell t = 0 then None
           else
             Some
               { wu_worker = label;
                 wu_busy = float_of_int (counter_cell b);
                 wu_steal = float_of_int (counter_cell s);
                 wu_idle = float_of_int (counter_cell i);
                 wu_merge = float_of_int (counter_cell m);
                 wu_wall = wall;
                 wu_tasks = counter_cell t }
         | _ -> None)
  |> List.sort (fun a b ->
         let num u =
           try int_of_string (String.sub u.wu_worker 1 (String.length u.wu_worker - 1))
           with _ -> max_int
         in
         compare (num a) (num b))

let cache_attribution () =
  Obs.Report.label_table
    [ "executor.result_cache.hits"; "executor.result_cache.misses" ]
  |> List.filter_map (fun (site, values) ->
         match values with
         | [ h; m ] ->
           let hits = counter_cell h and misses = counter_cell m in
           if hits + misses = 0 then None else Some (site, hits, misses)
         | _ -> None)

let pct part whole = if whole <= 0.0 then 0.0 else 100.0 *. part /. whole

(* Below this the busy/steal/idle shares are quotients of measurement
   noise — the jobs=1 inline path runs tasks on the caller with
   essentially no tracked wall, and 100%/0% splits there just mislead. *)
let wall_noise_ns = 1e4

let print_pool_utilization () =
  match pool_utilization () with
  | [] -> print_endline "pool: no parallel maps recorded (run with --jobs 2+)"
  | rows ->
    List.iter
      (fun u ->
        if u.wu_wall < wall_noise_ns then
          Printf.printf
            "pool %-4s utilization n/a (inline execution, wall ~0) | %5d tasks\n"
            u.wu_worker u.wu_tasks
        else
          Printf.printf
            "pool %-4s busy %5.1f%% | steal %4.1f%% | idle %5.1f%% | merge %4.1f%% | \
             %5d tasks | wall %.2fs\n"
            u.wu_worker (pct u.wu_busy u.wu_wall) (pct u.wu_steal u.wu_wall)
            (pct u.wu_idle u.wu_wall) (pct u.wu_merge u.wu_wall) u.wu_tasks
            (u.wu_wall /. 1e9))
      rows

let print_cache_attribution () =
  match cache_attribution () with
  | [] -> ()
  | rows ->
    let cells =
      List.map
        (fun (site, h, m) ->
          Printf.sprintf "%s %d/%d (%.0f%%)" site h (h + m)
            (pct (float_of_int h) (float_of_int (h + m))))
        rows
    in
    Printf.printf "result cache by site (hits/lookups): %s\n"
      (String.concat " | " cells)

let global_counter name =
  match
    List.find_map
      (fun (n, l, v) -> if n = name && l = None then Some v else None)
      (Obs.Metrics.snapshot ())
  with
  | Some (Obs.Metrics.Counter c) -> c
  | _ -> 0

(* Warm-start traffic: the result-cache disk tier plus the spilled
   edge-cost matrix. Silent when no --cache-dir was given (all zeros). *)
let print_disk_cache () =
  let rh = global_counter "executor.result_cache.disk_hits" in
  let rm = global_counter "executor.result_cache.disk_misses" in
  let rs = global_counter "executor.result_cache.disk_stores" in
  let loaded = global_counter "compress.matrix.disk_edges_loaded" in
  let served = global_counter "compress.matrix.disk_served" in
  if rh + rm + rs + loaded + served > 0 then
    Printf.printf
      "disk cache: results %d hit / %d miss / %d stored | matrix %d edge(s) loaded, \
       %d served warm\n"
      rh rm rs loaded served

let disk_cache_json () =
  Obs.Json.Obj
    [ ("result_hits", Obs.Json.Int (global_counter "executor.result_cache.disk_hits"));
      ( "result_misses",
        Obs.Json.Int (global_counter "executor.result_cache.disk_misses") );
      ( "result_stores",
        Obs.Json.Int (global_counter "executor.result_cache.disk_stores") );
      ( "matrix_edges_loaded",
        Obs.Json.Int (global_counter "compress.matrix.disk_edges_loaded") );
      ( "matrix_served_warm",
        Obs.Json.Int (global_counter "compress.matrix.disk_served") );
      ( "matrix_edges_computed",
        Obs.Json.Int (global_counter "compress.edge_cost.computed") ) ]

let pool_utilization_json () =
  Obs.Json.List
    (List.map
       (fun u ->
         Obs.Json.Obj
           [ ("worker", Obs.Json.String u.wu_worker);
             ("busy_ns", Obs.Json.Float u.wu_busy);
             ("steal_ns", Obs.Json.Float u.wu_steal);
             ("idle_ns", Obs.Json.Float u.wu_idle);
             ("merge_wait_ns", Obs.Json.Float u.wu_merge);
             ("wall_ns", Obs.Json.Float u.wu_wall);
             ("tasks", Obs.Json.Int u.wu_tasks);
             ("busy_share", Obs.Json.Float (pct u.wu_busy u.wu_wall /. 100.0)) ])
       (pool_utilization ()))

let cache_attribution_json () =
  Obs.Json.List
    (List.map
       (fun (site, h, m) ->
         Obs.Json.Obj
           [ ("site", Obs.Json.String site);
             ("hits", Obs.Json.Int h);
             ("misses", Obs.Json.Int m) ])
       (cache_attribution ()))

(* ------------------------------------------------------------------ *)
(* qtr rules                                                           *)
(* ------------------------------------------------------------------ *)

let rules_cmd =
  let xml =
    Arg.(value & flag & info [ "xml" ] ~doc:"Print the full XML pattern document.")
  in
  let run xml =
    if xml then print_endline (Optimizer.Rules.all_patterns_xml ())
    else begin
      Printf.printf "%d exploration rules:\n" Optimizer.Rules.count;
      List.iter
        (fun (r : Optimizer.Rule.t) ->
          Format.printf "  %-34s %a@." r.name Optimizer.Pattern.pp r.pattern)
        Optimizer.Rules.all;
      Printf.printf "%d implementation rules:\n"
        (List.length Optimizer.Engine.implementation_rule_names);
      List.iter (Printf.printf "  %s\n") Optimizer.Engine.implementation_rule_names
    end
  in
  Cmd.v (Cmd.info "rules" ~doc:"List transformation rules and their patterns")
    Term.(const run $ xml)

(* ------------------------------------------------------------------ *)
(* qtr optimize                                                        *)
(* ------------------------------------------------------------------ *)

let optimize_cmd =
  let sql =
    Arg.(
      required
      & opt (some string) None
      & info [ "sql" ] ~docv:"SQL" ~doc:"Query in the framework's SQL dialect.")
  in
  let disabled =
    Arg.(
      value
      & opt_all string []
      & info [ "disable" ] ~docv:"RULE" ~doc:"Disable a rule (repeatable).")
  in
  let run scale budget sql disabled trace json =
    with_telemetry trace @@ fun () ->
    if json then Obs.Metrics.set_enabled true;
    let fw = make_fw scale budget in
    let cat = Core.Framework.catalog fw in
    match Relalg.Sql_parser.parse cat sql with
    | Error e ->
      Printf.eprintf "%s\n" e;
      exit 1
    | Ok tree -> (
      if not json then Format.printf "Logical tree:@.%a@.@." Relalg.Logical.pp tree;
      match Core.Framework.optimize fw ~disabled tree with
      | Error e ->
        Printf.eprintf "optimize: %s\n" e;
        exit 1
      | Ok r ->
        let execution = Executor.Exec.run cat r.plan in
        if json then begin
          let string_set s =
            Obs.Json.List
              (List.map (fun n -> Obs.Json.String n) (Core.Framework.SSet.elements s))
          in
          let doc =
            Obs.Json.Obj
              [ ("sql", Obs.Json.String sql);
                ("cost", Obs.Json.Float r.cost);
                ("trees_explored", Obs.Json.Int r.trees_explored);
                ("budget_truncated", Obs.Json.Bool r.budget_truncated);
                ("ruleset", string_set r.exercised);
                ("impl_ruleset", string_set r.impl_exercised);
                ( "plan",
                  Obs.Json.String
                    (Format.asprintf "%a" Optimizer.Physical.pp r.plan) );
                ( "rows",
                  match execution with
                  | Ok res -> Obs.Json.Int (Executor.Resultset.row_count res)
                  | Error _ -> Obs.Json.Null );
                ( "execution_error",
                  match execution with
                  | Ok _ -> Obs.Json.Null
                  | Error e -> Obs.Json.String e );
                ("metrics", Obs.Report.metrics_json ()) ]
          in
          print_endline (Obs.Json.to_string doc)
        end
        else begin
          Format.printf "Plan (cost %.1f, %d trees explored):@.%a@.@." r.cost
            r.trees_explored Optimizer.Physical.pp r.plan;
          if r.budget_truncated then
            Format.printf
              "warning: exploration budget exhausted at %d trees — RuleSet and plan \
               may be incomplete; raise --budget@."
              r.trees_explored;
          Format.printf "RuleSet: %s@."
            (String.concat ", " (Core.Framework.SSet.elements r.exercised));
          match execution with
          | Ok res -> Format.printf "@.%a@." Executor.Resultset.pp res
          | Error e -> Printf.eprintf "execution: %s\n" e
        end)
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Parse, optimize and execute a SQL query")
    Term.(const run $ scale_arg $ budget_arg $ sql $ disabled $ trace_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* qtr generate                                                        *)
(* ------------------------------------------------------------------ *)

let generate_cmd =
  let rule =
    Arg.(value & opt (some string) None & info [ "rule" ] ~docv:"RULE" ~doc:"Target rule.")
  in
  let pair =
    Arg.(
      value
      & opt (some (pair ~sep:',' string string)) None
      & info [ "pair" ] ~docv:"R1,R2" ~doc:"Target rule pair.")
  in
  let extra =
    Arg.(
      value & opt int 0
      & info [ "extra-ops" ] ~docv:"N" ~doc:"Pad the query with N random operators.")
  in
  let relevant =
    Arg.(
      value & flag
      & info [ "relevant" ]
          ~doc:
            "Require the rule to be relevant (disabling it changes the chosen plan) — \
             the paper's §7 variant. Only with --rule.")
  in
  let run scale budget seed rule pair extra relevant trace =
    with_telemetry trace @@ fun () ->
    let fw = make_fw scale budget in
    let g = Prng.create seed in
    let result =
      match (rule, pair) with
      | Some r, None ->
        if relevant then
          Core.Query_gen.relevant_for_rule ~max_trials:100 ~extra_ops:extra fw g r
        else Core.Query_gen.for_rule ~max_trials:100 ~extra_ops:extra fw g r
      | None, Some (a, b) ->
        Core.Query_gen.for_pair ~max_trials:120 ~extra_ops:extra fw g (a, b)
      | _ ->
        Printf.eprintf "exactly one of --rule / --pair is required\n";
        exit 2
    in
    match result with
    | None ->
      Printf.eprintf "no query found within the trial budget\n";
      exit 1
    | Some { query; trials } ->
      let cat = Core.Framework.catalog fw in
      Format.printf "-- found in %d trial(s), %d operators@." trials
        (Relalg.Logical.size query);
      Format.printf "%s@.@." (Relalg.Sql_print.to_sql_pretty cat query);
      Format.printf "Logical tree:@.%a@." Relalg.Logical.pp query
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a SQL test case exercising a rule or rule pair")
    Term.(
      const run $ scale_arg $ budget_arg $ seed_arg $ rule $ pair $ extra $ relevant
      $ trace_arg)

(* ------------------------------------------------------------------ *)
(* qtr coverage                                                        *)
(* ------------------------------------------------------------------ *)

let n_rules_arg =
  Arg.(
    value & opt int 30
    & info [ "rules" ] ~docv:"N" ~doc:"Number of rules (prefix of the registry).")

let coverage_cmd =
  let run scale budget seed n jobs trace json =
    with_telemetry trace @@ fun () ->
    let pool = pool_of jobs in
    let fw = make_fw scale budget in
    let rules = List.filteri (fun i _ -> i < n) Optimizer.Rules.names in
    (* Each rule is one task with its own seed and alias range, so the
       trial counts are independent of the job count. *)
    let rows =
      Par.Pool.map_list pool
        (fun (i, name) ->
          Relalg.Ident.set_fresh (i * 100_000);
          let g = Prng.create (seed + i) in
          let r = Core.Query_gen.random_for_rules ~max_trials:100 fw g [ name ] in
          let p = Core.Query_gen.for_rule ~max_trials:100 fw g name in
          (name, r, p))
        (List.mapi (fun i name -> (i, name)) rules)
    in
    if not json then begin
      Printf.printf "%-34s %8s %9s\n" "rule" "RANDOM" "PATTERN";
      List.iter
        (fun (name, r, p) ->
          let show cap = function
            | Some (x : Core.Query_gen.generated) -> string_of_int x.trials
            | None -> cap
          in
          Printf.printf "%-34s %8s %9s\n%!" name (show ">100" r) (show "FAIL" p))
        rows
    end;
    if json then begin
      let trials = function
        | Some (x : Core.Query_gen.generated) -> Obs.Json.Int x.trials
        | None -> Obs.Json.Null
      in
      let doc =
        Obs.Json.Obj
          [ ( "rules",
              Obs.Json.List
                (List.map
                   (fun (name, r, p) ->
                     Obs.Json.Obj
                       [ ("rule", Obs.Json.String name);
                         ("random_trials", trials r);
                         ("pattern_trials", trials p) ])
                   rows) );
            ("cap", Obs.Json.Int 100) ]
      in
      print_endline (Obs.Json.to_string doc)
    end
  in
  Cmd.v
    (Cmd.info "coverage" ~doc:"Rule-coverage trials, RANDOM vs PATTERN (Figure 8)")
    Term.(
      const run $ scale_arg $ budget_arg $ seed_arg $ n_rules_arg $ jobs_arg $ trace_arg
      $ json_arg)

(* ------------------------------------------------------------------ *)
(* qtr compress                                                        *)
(* ------------------------------------------------------------------ *)

let k_arg = Arg.(value & opt int 5 & info [ "k" ] ~docv:"K" ~doc:"Test-suite size per rule.")

let pairs_flag =
  Arg.(value & flag & info [ "pairs" ] ~doc:"Target rule pairs instead of singletons.")

let compress_cmd =
  let run scale budget seed n k pairs incremental sim jobs cache_dir trace json =
    with_telemetry trace @@ fun () ->
    let pool = pool_of jobs in
    let rules_override = Option.map (fun r -> Optimizer.Rules.simulate_edit r) sim in
    let fw = make_fw ?rules:rules_override scale budget in
    let disk = setup_cache cache_dir (Core.Framework.catalog fw) in
    let g = Prng.create seed in
    let rules = List.filteri (fun i _ -> i < n) Optimizer.Rules.names in
    let targets =
      if pairs then Core.Suite.all_pairs rules
      else List.map (fun r -> Core.Suite.Single r) rules
    in
    let sess =
      incr_session ~incremental ~disk
        ~desc:(compress_desc ~seed ~n ~k ~pairs ~budget)
        fw
    in
    if not json then
      Printf.printf "generating suite: %d targets x k=%d...\n%!" (List.length targets) k;
    let suite =
      match sess with
      | Some s -> Core.Incr.generate ~extra_ops:2 ~pool s g ~targets ~k
      | None -> Core.Suite.generate ~extra_ops:2 ~pool fw g ~targets ~k
    in
    if not json then
      Printf.printf "%d distinct queries (shortfalls %d)\n%!"
        (Array.length suite.entries)
        (List.length (Core.Suite.shortfall suite));
    let algos =
      match sess with
      | None ->
        [ ("BASELINE", Core.Compress.baseline ~pool ?disk fw suite);
          ("SMC", Core.Compress.smc ~pool ?disk fw suite);
          ("TOPK", Core.Compress.topk ~pool ?disk fw suite);
          ("TOPK+mono", Core.Compress.topk ~exploit_monotonicity:true ?disk fw suite) ]
      | Some s ->
        (* One manifest-warmed service shared across the algorithms:
           every cell is computed (or served warm) once, and the solved
           service is snapshotted into the next manifest. *)
        let ec =
          Core.Compress.edge_costs ?disk ~warm_edges:(Core.Incr.warm_edges s) fw
            suite
        in
        let algos =
          [ ("BASELINE", Core.Compress.baseline ~pool ~ec fw suite);
            ("SMC", Core.Compress.smc ~pool ~ec fw suite);
            ("TOPK", Core.Compress.topk ~pool ~ec fw suite);
            ("TOPK+mono", Core.Compress.topk ~exploit_monotonicity:true ~ec fw suite) ]
        in
        Core.Incr.note_matrix s ec;
        if not (Core.Incr.finish s) then
          Printf.eprintf "warning: manifest write failed\n";
        algos
    in
    if json then begin
      let doc =
        Obs.Json.Obj
          ([ ("targets", Obs.Json.Int (List.length targets));
             ("k", Obs.Json.Int k);
             ("jobs", Obs.Json.Int (Par.Pool.jobs pool));
             ("distinct_queries", Obs.Json.Int (Array.length suite.entries));
             ("shortfalls", Obs.Json.Int (List.length (Core.Suite.shortfall suite))) ]
          @ (match sess with
            | Some s -> [ ("delta", delta_report_json s) ]
            | None -> [])
          @ [ ( "algorithms",
              Obs.Json.List
                (List.map
                   (fun (name, (sol : Core.Compress.solution)) ->
                     Obs.Json.Obj
                       [ ("name", Obs.Json.String name);
                         ("total_cost", Obs.Json.Float sol.total_cost);
                         ("invocations", Obs.Json.Int sol.invocations);
                         ( "under_covered",
                           Obs.Json.List
                             (List.map
                                (fun (t, d) ->
                                  Obs.Json.Obj
                                    [ ( "target",
                                        Obs.Json.String (Core.Suite.target_name t) );
                                      ("deficit", Obs.Json.Int d) ])
                                sol.under_covered) ) ])
                   algos) ) ])
      in
      print_endline (Obs.Json.to_string doc)
    end
    else begin
      Option.iter print_delta_summary sess;
      List.iter
        (fun (name, (sol : Core.Compress.solution)) ->
          Printf.printf "  %-10s cost %14.1f  invocations %5d\n%!" name sol.total_cost
            sol.invocations;
          List.iter
            (fun (t, d) ->
              Printf.printf "             under-covered: %s (missing %d of k=%d)\n%!"
                (Core.Suite.target_name t) d k)
            sol.under_covered)
        algos
    end
  in
  Cmd.v
    (Cmd.info "compress" ~doc:"Test-suite compression: BASELINE vs SMC vs TOPK")
    Term.(
      const run $ scale_arg $ budget_arg $ seed_arg $ n_rules_arg $ k_arg $ pairs_flag
      $ incremental_flag $ simulate_edit_arg $ jobs_arg $ cache_dir_arg $ trace_arg
      $ json_arg)

(* ------------------------------------------------------------------ *)
(* qtr validate                                                        *)
(* ------------------------------------------------------------------ *)

let validate_cmd =
  let inject =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject" ] ~docv:"RULE"
          ~doc:
            "Inject the buggy variant of RULE (one of the Faults registry) before \
             validating.")
  in
  let run scale budget seed n k inject incremental jobs cache_dir trace =
    with_telemetry trace @@ fun () ->
    let pool = pool_of jobs in
    let rules_override = Option.map Core.Faults.inject inject in
    let fw = make_fw ?rules:rules_override scale budget in
    let disk = setup_cache cache_dir (Core.Framework.catalog fw) in
    let g = Prng.create seed in
    let rules =
      match inject with
      | Some victim -> [ victim ]
      | None -> List.filteri (fun i _ -> i < n) Optimizer.Rules.names
    in
    let targets = List.map (fun r -> Core.Suite.Single r) rules in
    (* An injected fault changes the victim's fingerprint (its variant
       carries a distinct version tag), so an incremental validate after
       a clean one regenerates exactly the slices the fault can reach. *)
    let desc =
      Printf.sprintf "validate|seed=%d|n=%d|k=%d|inject=%s|budget=%d" seed n k
        (Option.value inject ~default:"-")
        budget
    in
    let sess = incr_session ~incremental ~disk ~desc fw in
    Printf.printf "generating suite: %d rules x k=%d...\n%!" (List.length targets) k;
    let suite =
      match sess with
      | Some s -> Core.Incr.generate ~extra_ops:2 ~pool s g ~targets ~k
      | None -> Core.Suite.generate ~extra_ops:2 ~pool fw g ~targets ~k
    in
    let sol =
      match sess with
      | None -> Core.Compress.topk ~pool ?disk fw suite
      | Some s ->
        let ec =
          Core.Compress.edge_costs ?disk ~warm_edges:(Core.Incr.warm_edges s) fw
            suite
        in
        let sol = Core.Compress.topk ~pool ~ec fw suite in
        Core.Incr.note_matrix s ec;
        if not (Core.Incr.finish s) then
          Printf.eprintf "warning: manifest write failed\n";
        sol
    in
    Option.iter print_delta_summary sess;
    List.iter
      (fun (t, d) ->
        Printf.printf "warning: target %s under-covered (missing %d of k=%d)\n%!"
          (Core.Suite.target_name t) d k)
      sol.under_covered;
    let report = Core.Correctness.run ~pool fw suite sol in
    Format.printf "%a@." Core.Correctness.pp_report report;
    if report.bugs <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Execute a compressed correctness suite (optionally with a fault injected)")
    Term.(
      const run $ scale_arg $ budget_arg $ seed_arg $ n_rules_arg $ k_arg $ inject
      $ incremental_flag $ jobs_arg $ cache_dir_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* qtr delta                                                           *)
(* ------------------------------------------------------------------ *)

let delta_cmd =
  let run scale budget seed n k pairs sim cache_dir trace json =
    with_telemetry trace @@ fun () ->
    let dir =
      match cache_dir with
      | Some d -> d
      | None ->
        Printf.eprintf "qtr: delta requires --cache-dir\n";
        exit 1
    in
    let rules_override = Option.map (fun r -> Optimizer.Rules.simulate_edit r) sim in
    let fw = make_fw ?rules:rules_override scale budget in
    let dc = Diskcache.create ~dir () in
    let sess =
      Core.Incr.start ~dc ~desc:(compress_desc ~seed ~n ~k ~pairs ~budget) fw
    in
    let p = Core.Incr.preview sess in
    if json then begin
      let doc =
        Obs.Json.Obj
          [ ("manifest_found", Obs.Json.Bool p.manifest_found);
            ("rules_total", Obs.Json.Int p.rules_total);
            ( "rules_changed",
              Obs.Json.List
                (List.map
                   (fun (name, change) ->
                     Obs.Json.Obj
                       [ ("rule", Obs.Json.String name);
                         ("change", Obs.Json.String change) ])
                   p.rules_changed) );
            ("full_rebuild", Obs.Json.Bool p.full_rebuild);
            ("targets_reusable", Obs.Json.Int p.targets_reusable);
            ("targets_total", Obs.Json.Int p.targets_total);
            ("edges_reusable", Obs.Json.Int p.edges_reusable);
            ("edges_total", Obs.Json.Int p.edges_total) ]
      in
      print_endline (Obs.Json.to_string doc)
    end
    else if not p.manifest_found then
      print_endline
        "no manifest for this configuration — the next --incremental run rebuilds \
         cold and writes one"
    else begin
      Printf.printf "manifest: %d rules recorded\n" p.rules_total;
      (match p.rules_changed with
      | [] -> print_endline "registry unchanged: every recorded artifact is reusable"
      | changed ->
        List.iter
          (fun (name, change) -> Printf.printf "  %-34s %s\n" name change)
          changed);
      Printf.printf
        "reusable now: %d/%d suite targets, %d/%d edge-cost cells%s\n"
        p.targets_reusable p.targets_total p.edges_reusable p.edges_total
        (if p.full_rebuild then
           " (pattern change or new rule forces a full rebuild)"
         else "")
    end
  in
  Cmd.v
    (Cmd.info "delta"
       ~doc:
         "Diff the live rule-content fingerprints against the --cache-dir manifest \
          and report what an --incremental run would reuse, without running anything")
    Term.(
      const run $ scale_arg $ budget_arg $ seed_arg $ n_rules_arg $ k_arg $ pairs_flag
      $ simulate_edit_arg $ cache_dir_arg $ trace_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* qtr reduce                                                          *)
(* ------------------------------------------------------------------ *)

let reduce_cmd =
  let inject =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject" ] ~docv:"RULE"
          ~doc:"Inject the buggy variant of RULE (one of the Faults registry).")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Persist every minimized reproducer (SQL + JSON metadata) into $(docv), \
             one case per bug signature; re-execute later with $(b,qtr replay).")
  in
  let max_checks =
    Arg.(
      value & opt int 400
      & info [ "max-checks" ] ~docv:"N"
          ~doc:"Oracle-evaluation budget per bug during delta reduction.")
  in
  let run scale budget seed n k inject corpus max_checks jobs cache_dir trace json =
    with_telemetry trace @@ fun () ->
    if json then Obs.Metrics.set_enabled true;
    let pool = pool_of jobs in
    let rules_override = Option.map Core.Faults.inject inject in
    let fw = make_fw ?rules:rules_override scale budget in
    let disk = setup_cache cache_dir (Core.Framework.catalog fw) in
    let g = Prng.create seed in
    let rules =
      match inject with
      | Some victim -> [ victim ]
      | None -> List.filteri (fun i _ -> i < n) Optimizer.Rules.names
    in
    let targets = List.map (fun r -> Core.Suite.Single r) rules in
    if not json then
      Printf.printf "generating suite: %d rules x k=%d...\n%!" (List.length targets) k;
    let suite = Core.Suite.generate ~extra_ops:2 ~pool fw g ~targets ~k in
    let sol = Core.Compress.topk ~pool ?disk fw suite in
    let report = Core.Correctness.run ~pool fw suite sol in
    if not json then Format.printf "%a@." Core.Correctness.pp_report report;
    let triaged = Triage.Pipeline.triage ~max_checks ~pool fw report in
    (match corpus with
    | None -> ()
    | Some dir -> (
      match
        Triage.Pipeline.save_corpus ~dir ~catalog:(Triage.Corpus.Tpch scale) ~budget
          ?fault:inject (Core.Framework.catalog fw) triaged
      with
      | Ok paths ->
        if not json then
          Printf.printf "wrote %d corpus case(s) to %s\n%!" (List.length paths) dir
      | Error e ->
        Printf.eprintf "%s\n" e;
        exit 1));
    if json then
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [ ("bugs", Obs.Json.Int (List.length report.bugs));
                ("triage", Triage.Pipeline.report_json triaged);
                ("metrics", Obs.Report.metrics_json ()) ]))
    else Format.printf "%a@." Triage.Pipeline.pp_report triaged
  in
  Cmd.v
    (Cmd.info "reduce"
       ~doc:
         "Validate, then delta-reduce every bug to a minimal reproducer, dedup by \
          signature, and optionally persist the regression corpus")
    Term.(
      const run $ scale_arg $ budget_arg $ seed_arg $ n_rules_arg $ k_arg $ inject
      $ corpus $ max_checks $ jobs_arg $ cache_dir_arg $ trace_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* qtr replay                                                          *)
(* ------------------------------------------------------------------ *)

let replay_cmd =
  let corpus =
    Arg.(
      required
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR" ~doc:"Corpus directory written by $(b,qtr reduce).")
  in
  let reinject =
    Arg.(
      value & flag
      & info [ "reinject" ]
          ~doc:
            "Re-inject the fault recorded in each case's metadata before replaying — \
             the corpus self-check: every case must reproduce its divergence, and the \
             exit status is non-zero if any does not. Without this flag the current \
             rule registry is used and any $(i,reproduced) divergence (a resurfaced \
             regression) makes the exit status non-zero.")
  in
  let budget_override =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"TREES"
          ~doc:"Override the per-case recorded exploration budget.")
  in
  let run corpus reinject budget jobs trace json =
    with_telemetry trace @@ fun () ->
    let pool = pool_of jobs in
    match Triage.Pipeline.replay ~reinject ?budget ~pool ~dir:corpus () with
    | Error e ->
      Printf.eprintf "%s\n" e;
      exit 2
    | Ok results ->
      let reproduced =
        List.length
          (List.filter
             (fun (r : Triage.Pipeline.replayed) ->
               match r.outcome with Triage.Pipeline.Reproduced _ -> true | _ -> false)
             results)
      in
      if json then print_endline (Obs.Json.to_string (Triage.Pipeline.replay_json results))
      else begin
        List.iter
          (fun r -> Format.printf "%a@." Triage.Pipeline.pp_replayed r)
          results;
        Printf.printf "%d/%d case(s) reproduced their divergence\n%!" reproduced
          (List.length results)
      end;
      (* Differential (discovery) cases carry their own right-hand side:
         the divergence is intrinsic to the query pair, not to the rule
         registry, so they must reproduce in BOTH modes — a clean one
         means the counterexample went stale. Rule-regression cases keep
         the original polarity: reproduce under --reinject, stay clean
         against the current registry. *)
      let differential, regression =
        List.partition
          (fun (r : Triage.Pipeline.replayed) -> r.case.meta.rhs_sql <> None)
          results
      in
      let reproduced_of l =
        List.length
          (List.filter
             (fun (r : Triage.Pipeline.replayed) ->
               match r.outcome with Triage.Pipeline.Reproduced _ -> true | _ -> false)
             l)
      in
      if reinject then begin
        if reproduced < List.length results then exit 1
      end
      else if
        reproduced_of regression > 0
        || reproduced_of differential < List.length differential
      then exit 1
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-execute a persisted regression corpus from disk (regression gate by \
          default; corpus self-check with --reinject)")
    Term.(const run $ corpus $ reinject $ budget_override $ jobs_arg $ trace_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* qtr stats                                                           *)
(* ------------------------------------------------------------------ *)

let stats_cmd =
  let queries_arg =
    Arg.(
      value & opt int 25
      & info [ "queries" ] ~docv:"N"
          ~doc:"Number of stochastic TPC-H queries to optimize for the sample.")
  in
  let sort_arg =
    let options =
      [ ("attempts", `Attempts); ("rewrites", `Rewrites); ("fired", `Fired);
        ("rate", `Rate); ("mean", `Mean); ("total", `Total) ]
    in
    Arg.(
      value
      & opt (enum options) `Attempts
      & info [ "sort" ] ~docv:"COLUMN"
          ~doc:"Sort column: $(b,attempts), $(b,rewrites), $(b,fired), $(b,rate), \
                $(b,mean) (latency) or $(b,total) (time).")
  in
  let run scale budget seed queries sort jobs cache_dir trace json =
    with_telemetry trace @@ fun () ->
    Obs.Metrics.set_enabled true;
    let pool = pool_of jobs in
    let fw = make_fw scale budget in
    let cat = Core.Framework.catalog fw in
    let dc_opt = setup_cache cache_dir cat in
    let ctx = { Core.Arggen.g = Prng.create seed; cat } in
    (* Queries are generated sequentially (one PRNG stream), then
       optimized as one task each with its own fresh-name range — the
       per-rule table is identical for every --jobs, and a parallel run
       additionally populates the pool-utilization lines below. *)
    let qs =
      Array.init queries (fun _ -> Core.Random_gen.generate ~min_ops:3 ~max_ops:8 ctx)
    in
    let outcomes =
      Par.Pool.map_array pool
        (fun (i, q) ->
          Relalg.Ident.set_fresh ((i + 1) * 100_000);
          Core.Framework.optimize fw q)
        (Array.mapi (fun i q -> (i, q)) qs)
    in
    let exhausted = ref 0 in
    let plans = ref [] in
    Array.iter
      (function
        | Ok r ->
          plans := r.Optimizer.Engine.plan :: !plans;
          if r.Optimizer.Engine.budget_truncated then incr exhausted
        | Error _ -> ())
      outcomes;
    (* Execute the winning plans twice: the second pass is served by the
       plan-fingerprint result cache, so the executor line below reports
       a live compile latency, throughput, and hit rate. *)
    List.iter (fun p -> ignore (Executor.Cache.run ~site:"stats" cat p)) (List.rev !plans);
    List.iter (fun p -> ignore (Executor.Cache.run ~site:"stats" cat p)) (List.rev !plans);
    if json then print_endline (Obs.Json.to_string (Obs.Report.metrics_json ()))
    else begin
      let counter_of = function Some (Obs.Metrics.Counter c) -> c | _ -> 0 in
      let hist_of rule = Obs.Metrics.histogram ~label:rule "optimizer.rule.match_ns" in
      let rows =
        List.map
          (fun (rule, values) ->
            match values with
            | [ a; r; f ] ->
              let attempts = counter_of a
              and rewrites = counter_of r
              and fired = counter_of f in
              let h = hist_of rule in
              let snap = Obs.Metrics.hist_snapshot h in
              let rate =
                if attempts = 0 then 0.0
                else 100.0 *. float_of_int rewrites /. float_of_int attempts
              in
              ( rule, attempts, rewrites, fired, rate,
                Obs.Clock.ns_to_us (Obs.Metrics.hist_mean h),
                Obs.Clock.ns_to_us (Obs.Metrics.hist_quantile h 0.95),
                Obs.Clock.ns_to_ms snap.sum )
            | _ -> (rule, 0, 0, 0, 0.0, 0.0, 0.0, 0.0))
          (Obs.Report.label_table
             [ "optimizer.rule.attempts"; "optimizer.rule.rewrites";
               "optimizer.rule.fired" ])
      in
      let key (_, a, r, fired, rate, mean, _, total) =
        match sort with
        | `Attempts -> float_of_int a
        | `Rewrites -> float_of_int r
        | `Fired -> float_of_int fired
        | `Rate -> rate
        | `Mean -> mean
        | `Total -> total
      in
      let rows = List.sort (fun x y -> compare (key y) (key x)) rows in
      Printf.printf "%d stochastic TPC-H queries optimized (scale %g, budget %d)\n\n"
        queries scale budget;
      Printf.printf "%-34s %9s %9s %9s %6s %9s %9s %9s\n" "rule" "attempts"
        "rewrites" "fired" "hit%" "mean_us" "p95_us" "total_ms";
      print_endline (String.make 100 '-');
      List.iter
        (fun (rule, a, r, f, rate, mean, p95, total) ->
          Printf.printf "%-34s %9d %9d %9d %5.1f%% %9.2f %9.2f %9.2f\n" rule a r f
            rate mean p95 total)
        rows;
      print_endline (String.make 100 '-');
      let cval name =
        match
          List.find_map
            (fun (n, l, v) -> if n = name && l = None then Some v else None)
            (Obs.Metrics.snapshot ())
        with
        | Some (Obs.Metrics.Counter c) -> c
        | _ -> 0
      in
      let hits = cval "optimizer.memo.hits" and misses = cval "optimizer.memo.misses" in
      let rate h m =
        if h + m = 0 then 0.0 else 100.0 *. float_of_int h /. float_of_int (h + m)
      in
      let rw_hits = cval "optimizer.rewrite_memo.hits" in
      let rw_misses = cval "optimizer.rewrite_memo.misses" in
      Printf.printf
        "trees explored %d | plan memo hit rate %.1f%% (%d/%d) | budget exhausted \
         on %d/%d queries | optimizer invocations %d\n"
        (cval "optimizer.explore.trees")
        (rate hits misses) hits (hits + misses) !exhausted queries
        (Core.Framework.invocations fw);
      Printf.printf
        "hashcons: %d live nodes (%d interned, %d reused) | rewrite memo hit rate \
         %.1f%% (%d/%d)\n"
        (Relalg.Hashcons.live_nodes ())
        (Relalg.Hashcons.misses ())
        (Relalg.Hashcons.hits ())
        (rate rw_hits rw_misses) rw_hits (rw_hits + rw_misses);
      let ex_hits = cval "executor.result_cache.hits" in
      let ex_misses = cval "executor.result_cache.misses" in
      (* Mean throughput over every (non-cached) execution, not the
         last run's gauge — a final empty result would read as 0. *)
      let exec_ns =
        (Obs.Metrics.hist_snapshot
           (Obs.Metrics.histogram "executor.exec_ns")).sum
      in
      let rows_per_sec =
        if exec_ns <= 0.0 then 0.0
        else float_of_int (cval "executor.rows") *. 1e9 /. exec_ns
      in
      Printf.printf
        "executor: mean plan compile %.2f us | %.0f result rows/s | result \
         cache hit rate %.1f%% (%d/%d)\n"
        (Obs.Clock.ns_to_us
           (Obs.Metrics.hist_mean (Obs.Metrics.histogram "executor.compile_ns")))
        rows_per_sec (rate ex_hits ex_misses) ex_hits (ex_hits + ex_misses);
      print_cache_attribution ();
      print_disk_cache ();
      print_pool_utilization ();
      (* Rule-content identity: what incremental maintenance diffs. The
         drift column compares against the most recently written
         manifest in the cache directory, whatever configuration wrote
         it — registry drift is configuration-independent. *)
      let infos = Core.Incr.rules_info fw in
      let manifest =
        Option.bind dc_opt (fun dc ->
            match List.rev (Manifest.index dc) with
            | (key, _) :: _ -> Manifest.load dc ~key
            | [] -> None)
      in
      let changes =
        match manifest with Some m -> Manifest.diff m ~rules:infos | None -> []
      in
      Printf.printf "\nrule registry (%d rules)%s\n" (List.length infos)
        (match manifest with
        | Some _ -> " vs latest cache manifest:"
        | None -> " (no manifest in cache; drift unknown):");
      Printf.printf "%-34s %-14s %-8s %s\n" "rule" "fingerprint" "source" "drift";
      List.iter
        (fun (ri : Manifest.rule_info) ->
          Printf.printf "%-34s %-14s %-8s %s\n" ri.name
            (String.sub ri.fingerprint 0 12)
            ri.source
            (match List.assoc_opt ri.name changes with
            | Some c -> Manifest.change_to_string c
            | None -> if manifest = None then "-" else "no"))
        infos;
      List.iter
        (fun (name, c) ->
          if c = Manifest.Removed then
            Printf.printf "%-34s %-14s %-8s removed\n" name "-" "-")
        changes
    end
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Optimize a stochastic TPC-H workload with metrics on and print a sorted \
          per-rule attempt/success/latency table")
    Term.(
      const run $ scale_arg $ budget_arg $ seed_arg $ queries_arg $ sort_arg $ jobs_arg
      $ cache_dir_arg $ trace_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* qtr profile                                                         *)
(* ------------------------------------------------------------------ *)

let profile_cmd =
  let queries_arg =
    Arg.(
      value & opt int 25
      & info [ "queries" ] ~docv:"N"
          ~doc:"Number of stochastic TPC-H queries to optimize and execute.")
  in
  let folded =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"FILE"
          ~doc:
            "Also write folded call stacks (one $(i,path;to;span self_us) line per \
             distinct span path) to $(docv) — the input format of flamegraph.pl and \
             speedscope.")
  in
  let by_domain =
    Arg.(
      value & flag
      & info [ "by-domain" ] ~doc:"Also print a per-domain breakdown of the profile.")
  in
  let run scale budget seed queries jobs folded by_domain trace json =
    with_telemetry trace @@ fun () ->
    Obs.Metrics.set_enabled true;
    Obs.Profile.enable ();
    let pool = pool_of jobs in
    let fw = make_fw scale budget in
    let cat = Core.Framework.catalog fw in
    let ctx = { Core.Arggen.g = Prng.create seed; cat } in
    let qs =
      Array.init queries (fun _ -> Core.Random_gen.generate ~min_ops:3 ~max_ops:8 ctx)
    in
    let outcomes =
      Par.Pool.map_array pool
        (fun (i, q) ->
          Relalg.Ident.set_fresh ((i + 1) * 100_000);
          match Core.Framework.optimize fw q with
          | Ok r ->
            Result.is_ok (Executor.Cache.run ~site:"profile" cat r.Optimizer.Engine.plan)
          | Error _ -> false)
        (Array.mapi (fun i q -> (i, q)) qs)
    in
    let ok = Array.fold_left (fun n b -> if b then n + 1 else n) 0 outcomes in
    (match folded with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Obs.Profile.write_folded oc);
      if not json then Printf.printf "folded stacks written to %s\n" path);
    if json then
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [ ("queries", Obs.Json.Int queries);
                ("executed_ok", Obs.Json.Int ok);
                ("jobs", Obs.Json.Int (Par.Pool.jobs pool));
                ("profile", Obs.Profile.to_json ());
                ("pool", pool_utilization_json ());
                ("result_cache", cache_attribution_json ()) ]))
    else begin
      Printf.printf
        "%d stochastic TPC-H queries optimized + executed (%d ok, scale %g, budget \
         %d, jobs %d)\n\n"
        queries ok scale budget (Par.Pool.jobs pool);
      Format.printf "%a@." Obs.Profile.pp ();
      if by_domain then
        List.iter
          (fun (dom, rows) ->
            Printf.printf "\ndomain %d:\n" dom;
            List.iter
              (fun (r : Obs.Profile.row) ->
                Printf.printf "  %-40s %7dx self %9.2fms total %9.2fms\n" r.name
                  r.count (r.self_ns /. 1e6) (r.total_ns /. 1e6))
              rows)
          (Obs.Profile.rows_by_domain ());
      print_pool_utilization ();
      print_cache_attribution ()
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Optimize a stochastic workload with the in-process span profiler enabled \
          and print self/total time, call counts and percentiles per span")
    Term.(
      const run $ scale_arg $ budget_arg $ seed_arg $ queries_arg $ jobs_arg $ folded
      $ by_domain $ trace_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* qtr report                                                          *)
(* ------------------------------------------------------------------ *)

let report_cmd =
  let inject =
    Arg.(
      value
      & opt (some string) None
      & info [ "inject" ] ~docv:"RULE"
          ~doc:
            "Inject the buggy variant of RULE (one of the Faults registry) so the \
             validation and triage sections are exercised.")
  in
  let run scale budget seed n k inject jobs cache_dir trace json =
    with_telemetry trace @@ fun () ->
    Obs.Metrics.set_enabled true;
    Obs.Profile.enable ();
    let t0 = Obs.Clock.now_ns () in
    let pool = pool_of jobs in
    let rules_override = Option.map Core.Faults.inject inject in
    let fw = make_fw ?rules:rules_override scale budget in
    let disk = setup_cache cache_dir (Core.Framework.catalog fw) in
    let g = Prng.create seed in
    let rules = List.filteri (fun i _ -> i < n) Optimizer.Rules.names in
    let targets = List.map (fun r -> Core.Suite.Single r) rules in
    if not json then
      Printf.printf "campaign: %d targets x k=%d, scale %g, budget %d, jobs %d%s\n%!"
        (List.length targets) k scale budget (Par.Pool.jobs pool)
        (match inject with None -> "" | Some r -> ", fault " ^ r);
    let suite = Core.Suite.generate ~extra_ops:2 ~pool fw g ~targets ~k in
    let shortfalls = Core.Suite.shortfall suite in
    let baseline : Core.Compress.solution = Core.Compress.baseline ~pool ?disk fw suite in
    let sol : Core.Compress.solution = Core.Compress.topk ~pool ?disk fw suite in
    let correctness = Core.Correctness.run ~pool fw suite sol in
    let triaged = Triage.Pipeline.triage ~pool fw correctness in
    let wall_s = Obs.Clock.ns_between t0 (Obs.Clock.now_ns ()) /. 1e9 in
    let covered = List.length targets - List.length shortfalls in
    let ratio =
      if baseline.total_cost <= 0.0 then 1.0 else sol.total_cost /. baseline.total_cost
    in
    if json then
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [ ("targets", Obs.Json.Int (List.length targets));
                ("k", Obs.Json.Int k);
                ("jobs", Obs.Json.Int (Par.Pool.jobs pool));
                ( "fault",
                  match inject with
                  | None -> Obs.Json.Null
                  | Some r -> Obs.Json.String r );
                ("wall_seconds", Obs.Json.Float wall_s);
                ( "coverage",
                  Obs.Json.Obj
                    [ ("fully_covered", Obs.Json.Int covered);
                      ("shortfalls", Obs.Json.Int (List.length shortfalls));
                      ( "distinct_queries",
                        Obs.Json.Int (Array.length suite.entries) ) ] );
                ( "compression",
                  Obs.Json.Obj
                    [ ("baseline_cost", Obs.Json.Float baseline.total_cost);
                      ("topk_cost", Obs.Json.Float sol.total_cost);
                      ("cost_ratio", Obs.Json.Float ratio);
                      ("invocations", Obs.Json.Int sol.invocations);
                      ( "under_covered",
                        Obs.Json.Int (List.length sol.under_covered) ) ] );
                ( "validation",
                  Obs.Json.Obj
                    [ ("pairs_checked", Obs.Json.Int correctness.pairs_checked);
                      ("executions", Obs.Json.Int correctness.executions);
                      ( "skipped_identical",
                        Obs.Json.Int correctness.skipped_identical );
                      ("bugs", Obs.Json.Int (List.length correctness.bugs));
                      ("errors", Obs.Json.Int (List.length correctness.errors)) ] );
                ( "triage",
                  Obs.Json.Obj
                    [ ( "distinct_signatures",
                        Obs.Json.Int (List.length triaged.cases) );
                      ("duplicates", Obs.Json.Int triaged.duplicates);
                      ("irreducible", Obs.Json.Int (List.length triaged.irreducible));
                      ("oracle_checks", Obs.Json.Int triaged.checks);
                      ("executions", Obs.Json.Int triaged.executions) ] );
                ("profile", Obs.Profile.to_json ());
                ("pool", pool_utilization_json ());
                ("result_cache", cache_attribution_json ());
                ("disk_cache", disk_cache_json ());
                ("metrics", Obs.Report.metrics_json ()) ]))
    else begin
      Printf.printf
        "coverage:    %d/%d targets fully covered at k=%d, %d distinct queries\n"
        covered (List.length targets) k (Array.length suite.entries);
      Printf.printf
        "compression: TOPK cost %.1f vs BASELINE %.1f (x%.2f) | %d optimizer \
         invocations | %d under-covered\n"
        sol.total_cost baseline.total_cost ratio sol.invocations
        (List.length sol.under_covered);
      Printf.printf
        "validation:  %d pairs checked | %d executed | %d skipped (identical plans) \
         | %d bug(s) | %d error(s)\n"
        correctness.pairs_checked correctness.executions correctness.skipped_identical
        (List.length correctness.bugs)
        (List.length correctness.errors);
      Printf.printf
        "triage:      %d distinct signature(s) | %d duplicate(s) | %d irreducible | \
         %d oracle checks\n\n"
        (List.length triaged.cases) triaged.duplicates
        (List.length triaged.irreducible)
        triaged.checks;
      Format.printf "%a@." Obs.Profile.pp ();
      print_pool_utilization ();
      print_cache_attribution ();
      print_disk_cache ();
      Printf.printf "wall: %.2fs\n" wall_s
    end
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "One-shot campaign summary: generate, compress, validate and triage, then \
          merge profile, pool utilization, cache attribution, coverage, compression \
          quality and triage counts into one text or JSON report")
    Term.(
      const run $ scale_arg $ budget_arg $ seed_arg $ n_rules_arg $ k_arg $ inject
      $ jobs_arg $ cache_dir_arg $ trace_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* qtr bench-diff                                                      *)
(* ------------------------------------------------------------------ *)

let benchdiff_cmd =
  let old_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD" ~doc:"Baseline bench --json result file.")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW" ~doc:"Candidate bench --json result file.")
  in
  let slack_arg =
    Arg.(
      value & opt float 1.0
      & info [ "slack" ] ~docv:"X"
          ~doc:
            "Multiply every numeric threshold by $(docv); correctness flags stay \
             zero-tolerance. CI compares runs from different machines with a large \
             slack so only catastrophic numeric changes (or any flag flip) fire.")
  in
  let load path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Obs.Json.of_string s with
    | Ok doc -> doc
    | Error e ->
      Printf.eprintf "%s: %s\n" path e;
      exit 2
  in
  let run old_path new_path slack json =
    let old_doc = load old_path in
    let new_doc = load new_path in
    let findings = Obs.Benchcmp.compare_results ~slack ~old_doc ~new_doc () in
    let regressions = Obs.Benchcmp.regressions findings in
    if json then
      print_endline
        (Obs.Json.to_string
           (Obs.Json.Obj
              [ ("old", Obs.Json.String old_path);
                ("new", Obs.Json.String new_path);
                ("slack", Obs.Json.Float slack);
                ("findings", Obs.Benchcmp.findings_json findings);
                ("regressions", Obs.Json.Int (List.length regressions)) ]))
    else begin
      List.iter (fun f -> Format.printf "%a@." Obs.Benchcmp.pp_finding f) findings;
      let count st =
        List.length
          (List.filter (fun (f : Obs.Benchcmp.finding) -> f.status = st) findings)
      in
      Printf.printf
        "%d metric(s) compared: %d passed, %d improved, %d new, %d regressed\n"
        (List.length findings) (count Obs.Benchcmp.Passed)
        (count Obs.Benchcmp.Improved)
        (count Obs.Benchcmp.Missing_old)
        (List.length regressions)
    end;
    if regressions <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two bench --json result files metric by metric against regression \
          thresholds; exit 1 when any gated metric regressed")
    Term.(const run $ old_arg $ new_arg $ slack_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* qtr discover                                                        *)
(* ------------------------------------------------------------------ *)

let discover_cmd =
  let alphabet_arg =
    let parse s =
      match Discovery.Template.alphabet_of_string s with
      | Ok a -> Ok a
      | Error e -> Error (`Msg e)
    in
    let print fmt a = Format.fprintf fmt "%s" (Discovery.Template.alphabet_name a) in
    Arg.(
      value
      & opt (conv (parse, print)) Discovery.Template.Setops
      & info [ "alphabet" ] ~docv:"SET"
          ~doc:
            "Operator alphabet for template enumeration: $(b,basic) (filter, join, \
             distinct), $(b,setops) (+ union all, union) or $(b,full) (+ intersect, \
             except).")
  in
  let max_nodes_arg =
    Arg.(
      value & opt int 2
      & info [ "max-nodes" ] ~docv:"N"
          ~doc:"Per-side operator budget for candidate templates.")
  in
  let trials_arg =
    Arg.(
      value & opt int Discovery.Validate.default_params.trials
      & info [ "trials" ] ~docv:"N"
          ~doc:"Differential instantiation attempts per candidate.")
  in
  let top_arg =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"K"
          ~doc:"Survivors promoted into optimizer rules and pushed through the \
                generate/compress/validate pipeline.")
  in
  let k_arg =
    Arg.(
      value & opt int 2
      & info [ "k" ] ~docv:"K"
          ~doc:"Queries per target in the ranking and promotion suites.")
  in
  let rank_budget_arg =
    Arg.(
      value & opt int 128
      & info [ "rank-budget" ] ~docv:"TREES"
          ~doc:
            "Exploration budget for the ranking/promotion frameworks (their \
             registries carry every surviving candidate).")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Persist minimized counterexamples of refuted candidates there \
             (replayable with $(b,qtr replay)).")
  in
  let run scale seed alphabet max_nodes trials top k rank_budget corpus jobs cache_dir
      trace json =
    with_telemetry trace @@ fun () ->
    (* Firing counters feed the ranker, so metrics are always on here
       (same stance as `qtr stats`). *)
    Obs.Metrics.set_enabled true;
    let pool = pool_of jobs in
    let config =
      { Discovery.Driver.default_config with
        alphabet;
        max_nodes;
        params = { Discovery.Validate.default_params with seed; trials };
        suite_k = k;
        top_k = top;
        rank_budget;
        corpus_dir = corpus;
        catalog = Triage.Corpus.Tpch scale }
    in
    let disk =
      setup_cache cache_dir (Triage.Corpus.catalog_of_spec config.catalog)
    in
    let report = Discovery.Driver.run ~pool ?disk config in
    if json then
      print_endline (Obs.Json.to_string (Discovery.Driver.report_json report))
    else Format.printf "%a@." Discovery.Driver.pp_report report;
    if report.candidates = 0 then begin
      (* An empty run discovers nothing and validates nothing; succeeding
         silently would let a mis-configured CI invocation pass vacuously. *)
      Format.eprintf
        "qtr discover: the %s alphabet produced no candidate templates at \
         --max-nodes %d; raise --max-nodes or pick a larger alphabet@."
        (Discovery.Template.alphabet_name alphabet)
        max_nodes;
      exit 2
    end;
    if report.seeded_survived <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "discover"
       ~doc:
         "Mine candidate rewrite rules from bounded templates, refute the unsound \
          ones differentially (counterexamples land in the corpus), rank the \
          survivors, and promote the top-K through the framework's own pipeline")
    Term.(
      const run $ scale_arg $ seed_arg $ alphabet_arg $ max_nodes_arg $ trials_arg
      $ top_arg $ k_arg $ rank_budget_arg $ corpus_arg $ jobs_arg $ cache_dir_arg
      $ trace_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* qtr verify-rules                                                    *)
(* ------------------------------------------------------------------ *)

let verify_rules_cmd =
  let include_discovered_arg =
    Arg.(
      value & flag
      & info [ "include-discovered" ]
          ~doc:
            "Also verify the discovery reference sets: every expressible \
             known-sound template must verify sound and every seeded-unsound \
             template must be refuted, or the command fails.")
  in
  let max_valuations_arg =
    Arg.(
      value
      & opt int (1 lsl 18)
      & info [ "max-valuations" ] ~docv:"N"
          ~doc:
            "Predicate-valuation budget per symbolic instance; rules exceeding \
             it come back $(b,unknown) rather than burning unbounded time.")
  in
  (* One verification work item. [expect_refuted] flips the failure
     condition for the seeded-unsound reference set. *)
  let run include_discovered max_valuations jobs trace json =
    with_telemetry trace @@ fun () ->
    let items =
      List.map
        (fun (r : Optimizer.Rule.t) ->
          ("registered", r.name, false, Optimizer.Rules.rdsl_of r.name))
        Optimizer.Rules.all
      @ (if not include_discovered then []
         else
           List.map
             (fun (n, c) ->
               ("known-sound", n, false, Discovery.Template.to_rdsl ~name:n c))
             Discovery.Template.known_sound
           @ List.map
               (fun (n, c) ->
                 ("seeded-unsound", n, true, Discovery.Template.to_rdsl ~name:n c))
               Discovery.Template.seeded_unsound)
    in
    let pool = pool_of jobs in
    let t0 = Unix.gettimeofday () in
    (* [map_array] merges in task order, so both renderings are
       independent of --jobs (the JSON byte-identically: it carries no
       timings). *)
    let verdicts =
      Par.Pool.map_array pool
        (fun (_, _, _, dsl) ->
          Option.map (Dsl.Rdsl.Verify.verify ~max_valuations) dsl)
        (Array.of_list items)
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    let rows = List.combine items (Array.to_list verdicts) in
    let status_of = function
      | None -> "unverified"
      | Some Dsl.Rdsl.Verify.Sound_bounded -> "sound"
      | Some (Dsl.Rdsl.Verify.Refuted _) -> "refuted"
      | Some (Dsl.Rdsl.Verify.Unknown _) -> "unknown"
    in
    let failed ((_, _, expect_refuted, dsl), v) =
      match (dsl, v) with
      | None, _ -> false (* closure-only or outside the DSL fragment *)
      | Some _, Some (Dsl.Rdsl.Verify.Refuted _) -> not expect_refuted
      | Some _, _ -> expect_refuted
    in
    let failures = List.filter failed rows in
    let count s =
      List.length (List.filter (fun (_, v) -> String.equal (status_of v) s) rows)
    in
    if json then begin
      let item_json ((group, name, expect_refuted, _), v) =
        Obs.Json.Obj
          ([ ("group", Obs.Json.String group);
             ("name", Obs.Json.String name);
             ("status", Obs.Json.String (status_of v));
             ("expect_refuted", Obs.Json.Bool expect_refuted);
             ("failed", Obs.Json.Bool (failed ((group, name, expect_refuted, Some ()), v)))
           ]
          @
          (match v with
          | Some (Dsl.Rdsl.Verify.Refuted c) ->
            [ ( "counterexample",
                Obs.Json.Obj
                  [ ( "instances",
                      Obs.Json.Obj
                        (List.map (fun (r, i) -> (r, Obs.Json.String i)) c.instances)
                    );
                    ( "valuation",
                      Obs.Json.List
                        (List.map (fun s -> Obs.Json.String s) c.valuation) );
                    ("lhs_rows", Obs.Json.String c.lhs_rows);
                    ("rhs_rows", Obs.Json.String c.rhs_rows) ] ) ]
          | Some (Dsl.Rdsl.Verify.Unknown m) -> [ ("reason", Obs.Json.String m) ]
          | _ -> []))
      in
      let doc =
        Obs.Json.Obj
          [ ("rules", Obs.Json.List (List.map item_json rows));
            ( "summary",
              Obs.Json.Obj
                [ ("sound", Obs.Json.Int (count "sound"));
                  ("refuted", Obs.Json.Int (count "refuted"));
                  ("unknown", Obs.Json.Int (count "unknown"));
                  ("unverified", Obs.Json.Int (count "unverified"));
                  ("failures", Obs.Json.Int (List.length failures)) ] ) ]
      in
      print_endline (Obs.Json.to_string doc)
    end
    else begin
      List.iter
        (fun (((group, name, _, _), v) as row) ->
          Printf.printf "%-15s %-34s %s%s\n" group name (status_of v)
            (if failed row then "  <-- FAIL" else "");
          match v with
          | Some (Dsl.Rdsl.Verify.Refuted _ as vd) when failed row ->
            Printf.printf "%17s%s\n" "" (Dsl.Rdsl.Verify.verdict_to_string vd)
          | Some (Dsl.Rdsl.Verify.Unknown m) -> Printf.printf "%17s(%s)\n" "" m
          | _ -> ())
        rows;
      Printf.printf
        "%d sound, %d refuted, %d unknown, %d unverified (%.2fs); %d failure(s)\n"
        (count "sound") (count "refuted") (count "unknown") (count "unverified")
        elapsed (List.length failures)
    end;
    if failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "verify-rules"
       ~doc:
         "Check every DSL-backed registered rule against the bounded symbolic \
          oracle (small-scope set-theoretic semantics over distinguished rows and \
          NULLs, no executor); closure-only rules are reported unverified. Fails \
          if any registered rule is refuted")
    Term.(
      const run $ include_discovered_arg $ max_valuations_arg $ jobs_arg $ trace_arg
      $ json_arg)

let () =
  let doc = "testing framework for query transformation rules (SIGMOD'09 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "qtr" ~version:"1.0.0" ~doc)
          [ rules_cmd; optimize_cmd; generate_cmd; coverage_cmd; compress_cmd;
            validate_cmd; delta_cmd; reduce_cmd; replay_cmd; stats_cmd; profile_cmd;
            report_cmd; discover_cmd; verify_rules_cmd; benchdiff_cmd ]))
