(* Correctness hunting (paper §2.3): inject a deliberately broken rule
   implementation into the optimizer, generate a test suite targeting that
   rule, compress it, execute Plan(q) against Plan(q, ¬{r}), and watch the
   framework report the bug.

     dune exec examples/correctness_hunt.exe *)

open Storage

let hunt victim =
  Printf.printf "\n--- injecting buggy %s (%s) ---\n" victim (Core.Faults.describe victim);
  let cat = Datagen.micro () in
  let fw = Core.Framework.create ~rules:(Core.Faults.inject victim) cat in
  (* Generate queries exercising the victim rule against the micro DB. *)
  let g = Prng.create 2024 in
  let suite =
    Core.Suite.generate ~extra_ops:1 fw g
      ~targets:[ Core.Suite.Single victim ]
      ~k:30
  in
  Printf.printf "suite: %d distinct queries exercising %s\n"
    (Array.length suite.entries) victim;
  let solution = Core.Compress.baseline fw suite in
  let report = Core.Correctness.run fw suite solution in
  Format.printf "%a@." Core.Correctness.pp_report report;
  List.iteri
    (fun i (bug : Core.Correctness.bug) ->
      if i = 0 then begin
        Format.printf "@.First failing query (SQL):@.%s@."
          (Relalg.Sql_print.to_sql cat bug.query);
        Format.printf "Logical tree:@.%a@." Relalg.Logical.pp bug.query
      end)
    report.bugs;
  if report.bugs = [] then
    print_endline
      "no bug surfaced with these seeds — rerun with more queries (k) or other seeds"

let () =
  (* A clean registry first: the same pipeline reports nothing. *)
  let cat = Datagen.micro () in
  let fw = Core.Framework.create cat in
  let g = Prng.create 2024 in
  let targets =
    List.map (fun r -> Core.Suite.Single r)
      [ "SelectMerge"; "PushSelectBelowLeftOuterJoin"; "SimplifyLeftOuterJoin" ]
  in
  let suite = Core.Suite.generate ~extra_ops:1 fw g ~targets ~k:6 in
  let report = Core.Correctness.run fw suite (Core.Compress.topk fw suite) in
  Format.printf "clean registry: %a@." Core.Correctness.pp_report report;
  (* Now break rules one at a time. *)
  List.iter hunt Core.Faults.names
