(** Query results and the bag comparison used for correctness validation
    (§2.3: "check if the results of executing the two plans are
    identical").

    The type is abstract: rows live in an array, and the sorted normal
    form used by every bag comparison is computed once and cached on the
    value, so comparing one baseline against many rule-off variants sorts
    the baseline a single time. The cache makes values logically
    immutable but physically mutable — share a result across domains only
    after forcing {!normalized} on the owning domain. *)

type t

val make : Relalg.Ident.t array -> Storage.Value.t array array -> t
(** [make cols rows] takes ownership of [rows] in the sense that the
    array must not be mutated afterwards; it is never mutated here. *)

val cols : t -> Relalg.Ident.t array
val rows : t -> Storage.Value.t array array
val row_count : t -> int

val compare_rows : Storage.Value.t array -> Storage.Value.t array -> int
(** Lexicographic total order on rows ({!Storage.Value.compare_total} per
    column; NULL first). *)

val normalized : t -> Storage.Value.t array array
(** Rows sorted by {!compare_rows} — the canonical form. Computed on
    first use and cached; the returned array must not be mutated. *)

val same_cols : t -> t -> bool
(** Same column identifiers in the same order. *)

val equal_bag : t -> t -> bool
(** Same column identifiers in the same order, and the same multiset of
    rows. All equivalent plans for a query produce the same column list,
    so a mismatch of columns simply reports inequality. *)

type diff = {
  missing_count : int;  (** rows present only in the first (expected) bag *)
  extra_count : int;  (** rows present only in the second (actual) bag *)
  missing_sample : Storage.Value.t array list;  (** up to [samples] of them *)
  extra_sample : Storage.Value.t array list;
}

val no_diff : diff
(** The empty diff (both counts zero). *)

val bag_diff : ?samples:int -> t -> t -> diff
(** Multiset difference of the two row bags: a row appearing [m] times in
    the first and [n] times in the second contributes [max 0 (m-n)] to
    missing and [max 0 (n-m)] to extra. At most [samples] (default 3)
    example rows are retained per side. Columns are not compared. *)

val diverges : ?samples:int -> t -> t -> diff option
(** [None] iff the two results are bag-equal (same columns, same row
    multiset); otherwise the {!bag_diff}. One pass over the cached normal
    forms — use this instead of [equal_bag] followed by [bag_diff]. *)

val row_to_sql : Storage.Value.t array -> string
(** One row as a parenthesised tuple of SQL literals. *)

val diff_summary : diff -> string
(** Human-readable one-liner: per-side counts plus the sample rows. *)

val first_difference :
  t -> t -> (Storage.Value.t array option * Storage.Value.t array option) option
(** After normalization, the first position where the two results diverge
    (for bug reports); [None] when the results are bag-equal. *)

val pp : Format.formatter -> t -> unit
(** Header and at most 20 rows. *)
