lib/optimizer/physical.ml: Aggregate Format Ident List Logical Printf Relalg Scalar String
