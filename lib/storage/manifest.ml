(* Suite manifest: the persisted record incremental maintenance diffs a
   live rule registry against.

   A manifest remembers (a) the content fingerprint of every rule the
   artifacts were built with and (b) named opaque sections — Marshal'd
   payloads whose types only the writing layer knows (lib/core stores
   the per-target generation records and the edge-cost matrix cells
   there; this module never depends on those types, keeping the storage
   layer at the bottom of the library stack).

   Persistence rides on Diskcache (ns "manifest"), so manifests inherit
   its versioning, digest checking and atomic-rename guarantees: a
   manifest from an older build or a torn write loads as None and the
   caller falls back to a cold rebuild. A small index entry (well-known
   key "index") lists every manifest key in the cache,
   most-recently-saved last, so CLI surfaces like `qtr stats` can find
   "the latest manifest" without knowing the exact pipeline
   configuration that produced it. *)

type rule_info = {
  name : string;
  fingerprint : string;
  pattern_fp : string;
  source : string;
}

type t = {
  config : string;
  rules : rule_info list;
  sections : (string * string) list;
}

let make ~config ~rules = { config; rules; sections = [] }

let section t name = List.assoc_opt name t.sections

let set_section t name payload =
  { t with
    sections = (name, payload) :: List.remove_assoc name t.sections }

type change = Body_changed | Pattern_changed | Added | Removed

let change_to_string = function
  | Body_changed -> "body-changed"
  | Pattern_changed -> "pattern-changed"
  | Added -> "added"
  | Removed -> "removed"

(* Classify every drift between the recorded registry and the live one.
   Unchanged rules are omitted; the result is sorted by rule name. The
   body/pattern split is the reuse lever: a body-only edit (same
   pattern_fp) invalidates exactly the slices whose dependency sets
   mention the rule, while a pattern change or an added rule can match
   trees the recorded artifacts never saw and forces a full rebuild. *)
let diff t ~rules =
  let old_tbl = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace old_tbl r.name r) t.rules;
  let changes = ref [] in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (r : rule_info) ->
      Hashtbl.replace seen r.name ();
      match Hashtbl.find_opt old_tbl r.name with
      | None -> changes := (r.name, Added) :: !changes
      | Some o ->
        if not (String.equal o.fingerprint r.fingerprint) then
          changes :=
            ( r.name,
              if String.equal o.pattern_fp r.pattern_fp then Body_changed
              else Pattern_changed )
            :: !changes)
    rules;
  List.iter
    (fun (o : rule_info) ->
      if not (Hashtbl.mem seen o.name) then
        changes := (o.name, Removed) :: !changes)
    t.rules;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !changes

let ns = "manifest"
let index_key = "index"

let index dc =
  match (Diskcache.load dc ~ns ~key:index_key : (string * string) list option) with
  | Some l -> l
  | None -> []

let load dc ~key = (Diskcache.load dc ~ns ~key : t option)

let save dc ~key t =
  let ok = Diskcache.store dc ~ns ~key t in
  if ok then begin
    let others = List.filter (fun (k, _) -> k <> key) (index dc) in
    ignore (Diskcache.store dc ~ns ~key:index_key (others @ [ (key, t.config) ]))
  end;
  ok
