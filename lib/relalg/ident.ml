type t = { rel : string; name : string }

let make rel name =
  if rel = "" || String.contains rel '_' then
    invalid_arg ("Ident.make: bad relation label " ^ rel);
  { rel; name }

let equal a b = String.equal a.rel b.rel && String.equal a.name b.name

let compare a b =
  match String.compare a.rel b.rel with
  | 0 -> String.compare a.name b.name
  | c -> c

let hash a = Hashtbl.hash (a.rel, a.name)
let to_sql a = a.rel ^ "_" ^ a.name

let of_sql s =
  match String.index_opt s '_' with
  | None -> None
  | Some i when i = 0 || i = String.length s - 1 -> None
  | Some i ->
    Some
      { rel = String.sub s 0 i;
        name = String.sub s (i + 1) (String.length s - i - 1) }

let pp fmt a = Format.pp_print_string fmt (to_sql a)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

(* Domain-local so parallel workers allocate aliases without racing.
   Deterministic parallel generation sets a disjoint per-task base with
   [set_fresh] before producing queries, making aliases a function of
   the task index rather than of domain scheduling. *)
let counter = Domain.DLS.new_key (fun () -> ref 0)

let fresh_rel () =
  let c = Domain.DLS.get counter in
  let n = !c in
  incr c;
  "r" ^ string_of_int n

let reset_fresh () = Domain.DLS.get counter := 0
let set_fresh n = Domain.DLS.get counter := n
