(** Lexer for the SQL dialect emitted by {!Sql_print}. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string  (** upper-cased keyword *)
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | SLASH
  | EOF

val tokenize : string -> (token list, string) result
(** The trailing [EOF] token is always present on success. *)

val token_to_string : token -> string
