(** Physical plan interpreter over the in-memory catalog.

    Faithful SQL semantics where it matters for rule-correctness testing:
    three-valued predicate logic, NULL-key behaviour of hash and merge
    joins, outer-join padding, NULL-skipping aggregates, a fabricated row
    for global aggregation over empty input, and null-safe set
    operations. *)

val run :
  Storage.Catalog.t -> Optimizer.Physical.t -> (Resultset.t, string) result
(** Materializing, bottom-up execution. Fails (rather than raising) on
    unknown tables/columns or type errors. *)

val run_logical :
  ?options:Optimizer.Engine.options ->
  Storage.Catalog.t ->
  Relalg.Logical.t ->
  (Resultset.t, string) result
(** Convenience: optimize then execute. *)
