type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

(* SplitMix64 finalizer: advance by the golden gamma, then mix. *)
let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g =
  let s = bits64 g in
  { state = s }

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) in
  r mod bound

let int_in g lo hi =
  if lo > hi then invalid_arg "Prng.int_in: lo > hi";
  lo + int g (hi - lo + 1)

let float g bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  bound *. (r /. 9007199254740992.0)

let bool g = Int64.logand (bits64 g) 1L = 1L

let chance g p = float g 1.0 < p

let pick g = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | xs -> List.nth xs (int g (List.length xs))

let pick_arr g a =
  if Array.length a = 0 then invalid_arg "Prng.pick_arr: empty array";
  a.(int g (Array.length a))

let shuffle g xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let sample g n xs =
  let shuffled = shuffle g xs in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | y :: ys -> y :: take (k - 1) ys
  in
  take (max 0 n) shuffled
