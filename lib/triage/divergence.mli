(** Classification of a correctness divergence — the "what went wrong"
    axis of a bug signature. *)

type kind =
  | Row_count  (** the two plans return different numbers of rows *)
  | Row_content  (** same cardinality, different row multiset *)
  | Exec_error  (** the rule-disabled plan fails to execute at all *)

val kind_name : kind -> string
(** Stable snake_case spelling, used in signatures and corpus metadata. *)

val kind_of_name : string -> kind option

type t = {
  kind : kind;
  expected_rows : int;  (** rows of Plan(q) — all rules enabled *)
  actual_rows : int;  (** rows of Plan(q, ¬R) *)
  diff : Executor.Resultset.diff;
  detail : string;  (** human-readable summary *)
}

val of_diff :
  expected:Executor.Resultset.t ->
  actual:Executor.Resultset.t ->
  Executor.Resultset.diff ->
  t
(** Classify from an already computed bag-diff (one
    {!Executor.Resultset.diverges} pass serves both the equality check
    and the report). *)

val classify : expected:Executor.Resultset.t -> actual:Executor.Resultset.t -> t
(** Bag-diff the two results and classify. Only call on results that are
    not bag-equal. *)

val of_bug : Core.Correctness.bug -> t
(** Re-classify a validation bug from its stored bag-diff summary. *)

val exec_error : expected_rows:int -> string -> t

val pp : Format.formatter -> t -> unit
