type t = TInt | TFloat | TString | TBool | TDate

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let to_string = function
  | TInt -> "INTEGER"
  | TFloat -> "DOUBLE"
  | TString -> "VARCHAR"
  | TBool -> "BOOLEAN"
  | TDate -> "DATE"

let of_string s =
  match String.uppercase_ascii s with
  | "INTEGER" | "INT" -> Some TInt
  | "DOUBLE" | "FLOAT" | "REAL" -> Some TFloat
  | "VARCHAR" | "TEXT" | "STRING" | "CHAR" -> Some TString
  | "BOOLEAN" | "BOOL" -> Some TBool
  | "DATE" -> Some TDate
  | _ -> None

let is_numeric = function TInt | TFloat -> true | TString | TBool | TDate -> false

let pp fmt t = Format.pp_print_string fmt (to_string t)
