(** Machine-readable rendering of the metrics registry.

    The JSON shape is stable so bench trajectories stay diffable:
    counters are integers, gauges floats, histograms objects with
    [count]/[sum]/[min]/[max]/[mean]/[p50]/[p95]. *)

val value_json : Metrics.value -> quantile:(float -> float) -> Json.t

val metrics_json : unit -> Json.t
(** The whole registry:
    [{"metrics": [{"name": ..., "label": ..., ...value...}, ...]}]. *)

val pp_metrics : Format.formatter -> unit -> unit
(** Human-readable dump of every instrument, one per line, sorted. *)

val label_table : string list -> (string * Metrics.value option list) list
(** [label_table names] regroups the registry by label: one row per
    distinct label carrying, in order, the value of each metric in
    [names] for that label (None where unregistered). Unlabelled
    instruments are skipped. The per-rule tables of [qtr stats] are
    built from this. *)
