lib/core/framework.mli: Executor Optimizer Relalg Storage
