(* Core framework tests: the DBMS facade, pattern-based generation for
   singleton rules and pairs, and the RANDOM baseline. *)
module F = Core.Framework
module QG = Core.Query_gen

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let cat = Storage.Datagen.tpch ~scale:0.001 ()

let test_invocation_counter () =
  let fw = F.create cat in
  check int_t "starts at zero" 0 (F.invocations fw);
  let g = Storage.Prng.create 5 in
  let ctx = { Core.Arggen.g; cat } in
  let q = Core.Random_gen.generate ~max_ops:4 ctx in
  ignore (F.ruleset fw q);
  ignore (F.cost fw q);
  check int_t "two invocations" 2 (F.invocations fw);
  F.reset_invocations fw;
  check int_t "reset" 0 (F.invocations fw)

let test_cost_and_disable () =
  let fw = F.create cat in
  let g = Storage.Prng.create 17 in
  match QG.for_rule fw g "PushSelectBelowJoin" with
  | None -> Alcotest.fail "generation failed"
  | Some { query; _ } ->
    let on = Result.get_ok (F.cost fw query) in
    let off = Result.get_ok (F.cost fw ~disabled:[ "PushSelectBelowJoin" ] query) in
    check bool_t "disabling never helps" true (off >= on -. 1e-9)

let test_pattern_of () =
  let fw = F.create cat in
  check bool_t "known rule" true (F.pattern_of fw "JoinCommute" <> None);
  check bool_t "unknown rule" true (F.pattern_of fw "NoSuchRule" = None)

let test_execute () =
  let fw = F.create cat in
  let region = Relalg.Logical.Get { table = "region"; alias = "q" } in
  match F.execute fw region with
  | Ok res -> check int_t "five regions" 5 (Executor.Resultset.row_count res)
  | Error e -> Alcotest.fail e

(* PATTERN generation succeeds quickly for every rule (Figure 8's
   qualitative claim: small trial counts for all rules). *)
let test_pattern_trials_small () =
  let fw = F.create cat in
  let g = Storage.Prng.create 23 in
  let total = ref 0 in
  List.iter
    (fun name ->
      match QG.for_rule ~max_trials:80 fw g name with
      | None -> Alcotest.failf "PATTERN failed for %s" name
      | Some { trials; _ } -> total := !total + trials)
    Optimizer.Rules.names;
  let avg = float_of_int !total /. float_of_int Optimizer.Rules.count in
  check bool_t (Printf.sprintf "average trials small (%.1f)" avg) true (avg < 8.0)

let test_pattern_pairs () =
  let fw = F.create cat in
  let g = Storage.Prng.create 31 in
  (* A handful of representative pairs, including the paper's §3 example
     of join + outer-join interaction. *)
  let pairs =
    [ ("JoinCommute", "GbAggPullAboveJoin");
      ("JoinLeftOuterJoinAssoc", "JoinCommute");
      ("SelectMerge", "PushSelectBelowJoin");
      ("UnionAllCommute", "JoinCommute");
      ("SimplifyLeftOuterJoin", "PushSelectBelowJoin") ]
  in
  List.iter
    (fun (r1, r2) ->
      match QG.for_pair ~max_trials:120 fw g (r1, r2) with
      | None -> Alcotest.failf "pair (%s, %s) failed" r1 r2
      | Some { query; _ } -> (
        match F.ruleset fw query with
        | Ok rs ->
          check bool_t (r1 ^ " fired") true (F.SSet.mem r1 rs);
          check bool_t (r2 ^ " fired") true (F.SSet.mem r2 rs)
        | Error e -> Alcotest.fail e))
    pairs

let test_random_baseline () =
  let fw = F.create cat in
  let g = Storage.Prng.create 41 in
  (* An easy rule: random generation should find it, eventually. *)
  match QG.random_for_rules ~max_trials:300 fw g [ "PushSelectBelowJoin" ] with
  | None -> Alcotest.fail "random generation never exercised an easy rule"
  | Some { query; trials } ->
    check bool_t "trials positive" true (trials >= 1);
    check bool_t "query valid" true
      (Result.is_ok (Relalg.Props.validate cat query))

let test_pattern_beats_random_on_hard_rule () =
  (* A rule needing two specific operators stacked: random generation
     rarely hits it; patterns nail it. Uses matched trial budgets. *)
  let fw = F.create cat in
  let hard = "GbAggPullAboveJoin" in
  let rec pattern_trials seed budget =
    if budget = 0 then 80
    else
      match QG.for_rule ~max_trials:80 fw (Storage.Prng.create seed) hard with
      | Some { trials; _ } -> trials
      | None -> pattern_trials (seed + 1) (budget - 1)
  in
  let p = pattern_trials 100 3 in
  let r =
    match QG.random_for_rules ~max_trials:80 fw (Storage.Prng.create 100) [ hard ] with
    | Some { trials; _ } -> trials
    | None -> 80
  in
  check bool_t (Printf.sprintf "pattern (%d) <= random (%d)" p r) true (p <= r)

let test_generated_queries_emit_sql () =
  let fw = F.create cat in
  let g = Storage.Prng.create 53 in
  List.iter
    (fun name ->
      match QG.for_rule ~max_trials:80 fw g name with
      | None -> Alcotest.failf "generation failed for %s" name
      | Some { query; _ } ->
        let sql = Relalg.Sql_print.to_sql cat query in
        (match Relalg.Sql_parser.parse cat sql with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "emitted SQL unparsable for %s: %s" name e))
    [ "JoinCommute"; "GbAggPushBelowJoin"; "IntersectToSemiJoin"; "SimplifyLeftOuterJoin" ]

let test_relevant_generation () =
  (* §7 variant: the generated query's plan must actually change when the
     rule is turned off. *)
  let fw = F.create cat in
  let g = Storage.Prng.create 71 in
  List.iter
    (fun rule ->
      match QG.relevant_for_rule ~max_trials:80 fw g rule with
      | None -> Alcotest.failf "no relevant query for %s" rule
      | Some { query; _ } -> (
        match (F.optimize fw query, F.optimize fw ~disabled:[ rule ] query) with
        | Ok on, Ok off ->
          check bool_t (rule ^ " relevant") false
            (Optimizer.Physical.equal on.plan off.plan)
        | _ -> Alcotest.fail "optimize failed"))
    [ "PushSelectBelowJoin"; "MergeSelectIntoJoin" ]

let test_padding_constraint () =
  let fw = F.create cat in
  let g = Storage.Prng.create 61 in
  match QG.for_rule ~max_trials:80 ~extra_ops:5 fw g "JoinCommute" with
  | None -> Alcotest.fail "generation failed"
  | Some { query; _ } ->
    check bool_t "padded queries are bigger" true (Relalg.Logical.size query >= 5);
    check bool_t "still valid" true (Result.is_ok (Relalg.Props.validate cat query))

let suite =
  [ ( "core.framework",
      [ Alcotest.test_case "invocation counter" `Quick test_invocation_counter;
        Alcotest.test_case "cost and disable" `Quick test_cost_and_disable;
        Alcotest.test_case "pattern export" `Quick test_pattern_of;
        Alcotest.test_case "execute" `Quick test_execute ] );
    ( "core.query_gen",
      [ Alcotest.test_case "all rules generable" `Slow test_pattern_trials_small;
        Alcotest.test_case "rule pairs" `Slow test_pattern_pairs;
        Alcotest.test_case "random baseline" `Slow test_random_baseline;
        Alcotest.test_case "pattern beats random on hard rule" `Slow
          test_pattern_beats_random_on_hard_rule;
        Alcotest.test_case "generated queries emit valid SQL" `Quick
          test_generated_queries_emit_sql;
        Alcotest.test_case "relevant-rule variant" `Slow test_relevant_generation;
        Alcotest.test_case "operator padding" `Quick test_padding_constraint ] ) ]
