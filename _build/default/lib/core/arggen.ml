open Storage
open Relalg
module L = Logical
module S = Scalar
module A = Aggregate

type ctx = { g : Prng.t; cat : Catalog.t }

(* ------------------------------------------------------------------ *)
(* Relabeling                                                          *)
(* ------------------------------------------------------------------ *)

let labels_of tree =
  L.fold
    (fun acc node ->
      match node with
      | L.Get { alias; _ } -> alias :: acc
      | L.Project { cols; _ } -> List.map (fun ((id : Ident.t), _) -> id.rel) cols @ acc
      | L.GroupBy { aggs; _ } -> List.map (fun ((id : Ident.t), _) -> id.rel) aggs @ acc
      | _ -> acc)
    [] tree
  |> List.sort_uniq String.compare

let rec rename_tree f (t : L.t) : L.t =
  let rid (id : Ident.t) = Ident.make (f id.rel) id.name in
  let rs = S.rename rid in
  match t with
  | L.Get { table; alias } -> L.Get { table; alias = f alias }
  | L.Filter { pred; child } -> L.Filter { pred = rs pred; child = rename_tree f child }
  | L.Project { cols; child } ->
    L.Project
      { cols = List.map (fun (id, e) -> (rid id, rs e)) cols;
        child = rename_tree f child }
  | L.Join { kind; pred; left; right } ->
    L.Join
      { kind; pred = rs pred; left = rename_tree f left; right = rename_tree f right }
  | L.GroupBy { keys; aggs; child } ->
    L.GroupBy
      { keys = List.map rid keys;
        aggs = List.map (fun (id, a) -> (rid id, A.rename rid a)) aggs;
        child = rename_tree f child }
  | L.UnionAll (a, b) -> L.UnionAll (rename_tree f a, rename_tree f b)
  | L.Union (a, b) -> L.Union (rename_tree f a, rename_tree f b)
  | L.Intersect (a, b) -> L.Intersect (rename_tree f a, rename_tree f b)
  | L.Except (a, b) -> L.Except (rename_tree f a, rename_tree f b)
  | L.Distinct a -> L.Distinct (rename_tree f a)
  | L.Sort { keys; child } ->
    L.Sort
      { keys = List.map (fun (id, d) -> (rid id, d)) keys; child = rename_tree f child }
  | L.Limit { count; child } -> L.Limit { count; child = rename_tree f child }

let refresh_labels tree =
  let mapping =
    List.map (fun old -> (old, Ident.fresh_rel ())) (labels_of tree)
  in
  rename_tree (fun rel -> Option.value (List.assoc_opt rel mapping) ~default:rel) tree

(* ------------------------------------------------------------------ *)
(* Basic pieces                                                        *)
(* ------------------------------------------------------------------ *)

let fresh_get ctx =
  let table = Prng.pick ctx.g (Catalog.table_names ctx.cat) in
  L.Get { table; alias = Ident.fresh_rel () }

let schema_of ctx tree = Props.schema_exn ctx.cat tree

let alias_bindings tree =
  L.fold
    (fun acc node ->
      match node with L.Get { table; alias } -> (alias, table) :: acc | _ -> acc)
    [] tree

(* A constant that actually occurs in the column's base data, when the
   column traces back to a base table; otherwise a typed default. *)
let sample_const ctx tree (c : Props.col_info) : Value.t =
  let from_data =
    match List.assoc_opt c.id.rel (alias_bindings tree) with
    | None -> None
    | Some table -> (
      match Catalog.find ctx.cat table with
      | None -> None
      | Some tb -> (
        match Table.column_values tb c.id.name with
        | exception Not_found -> None
        | values ->
          let non_null = Array.to_list values |> List.filter (fun v -> not (Value.is_null v)) in
          if non_null = [] then None else Some (Prng.pick ctx.g non_null)))
  in
  match from_data with
  | Some v -> v
  | None -> (
    match c.ty with
    | Datatype.TInt -> Value.Int (Prng.int ctx.g 100)
    | Datatype.TFloat -> Value.Float (float_of_int (Prng.int ctx.g 1000) /. 10.0)
    | Datatype.TString -> Value.Str "x"
    | Datatype.TBool -> Value.Bool (Prng.bool ctx.g)
    | Datatype.TDate -> Value.Date (Value.date_of_ymd 1995 6 (1 + Prng.int ctx.g 28)))

let cmp_for ctx (ty : Datatype.t) : S.cmp_op =
  match ty with
  | Datatype.TString | Datatype.TBool ->
    Prng.pick ctx.g [ S.Eq; S.Ne ]
  | Datatype.TInt | Datatype.TFloat | Datatype.TDate ->
    Prng.pick ctx.g [ S.Eq; S.Ne; S.Lt; S.Le; S.Gt; S.Ge ]

let const_cmp ctx tree (c : Props.col_info) =
  S.Cmp (cmp_for ctx c.ty, S.Col c.id, S.Const (sample_const ctx tree c))

let same_type_pairs cols1 cols2 =
  List.concat_map
    (fun (a : Props.col_info) ->
      List.filter_map
        (fun (b : Props.col_info) ->
          if Datatype.equal a.ty b.ty && not (Ident.equal a.id b.id) then Some (a, b)
          else None)
        cols2)
    cols1

let random_conjunct ctx tree cols =
  let r = Prng.float ctx.g 1.0 in
  if r < 0.50 then Some (const_cmp ctx tree (Prng.pick ctx.g cols))
  else if r < 0.70 then
    match same_type_pairs cols cols with
    | [] -> Some (const_cmp ctx tree (Prng.pick ctx.g cols))
    | pairs ->
      let a, b = Prng.pick ctx.g pairs in
      Some (S.Cmp (cmp_for ctx a.ty, S.Col a.id, S.Col b.id))
  else if r < 0.85 then
    let nullable = List.filter (fun (c : Props.col_info) -> c.nullable) cols in
    let c = if nullable = [] then Prng.pick ctx.g cols else Prng.pick ctx.g nullable in
    Some (if Prng.bool ctx.g then S.IsNull (S.Col c.id) else S.IsNotNull (S.Col c.id))
  else
    let a = Prng.pick ctx.g cols and b = Prng.pick ctx.g cols in
    Some (S.Or (const_cmp ctx tree a, const_cmp ctx tree b))

let random_pred ctx tree =
  match schema_of ctx tree with
  | [] -> None
  | cols ->
    (* Occasionally a trivially-true predicate: real query generators
       produce them too, and they are what exercises trivial-select
       elimination. *)
    if Prng.chance ctx.g 0.07 then Some S.true_
    else
      let n = if Prng.chance ctx.g 0.3 then 2 else 1 in
      let conjuncts = List.init n (fun _ -> random_conjunct ctx tree cols) in
      let conjuncts = List.filter_map Fun.id conjuncts in
      if conjuncts = [] then None else Some (S.conj conjuncts)

(* ------------------------------------------------------------------ *)
(* Join predicates                                                     *)
(* ------------------------------------------------------------------ *)

(* Foreign-key pairs between the base tables of the two subtrees; each
   candidate is the full column-pair list of one FK. *)
let fk_candidates ctx left right =
  let lbind = alias_bindings left and rbind = alias_bindings right in
  let fks_between (la, lt) (ra, rt) =
    match Catalog.find ctx.cat lt with
    | None -> []
    | Some tb ->
      List.filter_map
        (fun (fk : Schema.foreign_key) ->
          if String.equal fk.fk_table rt then
            Some
              (List.map2
                 (fun c rc -> (Ident.make la c, Ident.make ra rc))
                 fk.fk_columns fk.fk_ref_columns)
          else None)
        tb.schema.foreign_keys
  in
  List.concat_map
    (fun lb ->
      List.concat_map
        (fun rb ->
          fks_between lb rb
          @ List.map (List.map (fun (a, b) -> (b, a))) (fks_between rb lb))
        rbind)
    lbind

let join_pred ctx ~left ~right =
  let lcols = schema_of ctx left and rcols = schema_of ctx right in
  let fk = fk_candidates ctx left right in
  (* Only FK pairs whose columns survived projections. *)
  let exported cols id = List.exists (fun (c : Props.col_info) -> Ident.equal c.id id) cols in
  let fk =
    List.filter
      (fun pairs ->
        List.for_all (fun (a, b) -> exported lcols a && exported rcols b) pairs)
      fk
  in
  let equi =
    if fk <> [] && Prng.chance ctx.g 0.75 then
      Some
        (S.conj
           (List.map
              (fun (a, b) -> S.eq (S.Col a) (S.Col b))
              (Prng.pick ctx.g fk)))
    else
      match same_type_pairs lcols rcols with
      | [] -> None
      | pairs ->
        (* Prefer pairs touching candidate keys: they keep rule
           preconditions (semi-join to join, group-by motion) satisfiable. *)
        let key_cols tree = List.concat_map Ident.Set.elements (Props.keys ctx.cat tree) in
        let lkeys = key_cols left and rkeys = key_cols right in
        let score ((a : Props.col_info), (b : Props.col_info)) =
          (if List.exists (Ident.equal a.id) lkeys then 2 else 0)
          + (if List.exists (Ident.equal b.id) rkeys then 2 else 0)
          + (match a.ty with Datatype.TInt -> 1 | _ -> 0)
        in
        let best = List.fold_left (fun m p -> max m (score p)) 0 pairs in
        let top = List.filter (fun p -> score p = best) pairs in
        let a, b = Prng.pick ctx.g top in
        Some (S.eq (S.Col a.id) (S.Col b.id))
  in
  match equi with
  | None -> None
  | Some base ->
    if Prng.chance ctx.g 0.2 then
      match same_type_pairs lcols rcols with
      | [] -> Some base
      | pairs ->
        let a, b = Prng.pick ctx.g pairs in
        Some (S.And (base, S.Cmp (cmp_for ctx a.ty, S.Col a.id, S.Col b.id)))
    else Some base

(* ------------------------------------------------------------------ *)
(* Operator wrappers                                                   *)
(* ------------------------------------------------------------------ *)

let add_filter ctx child =
  Option.map (fun pred -> L.Filter { pred; child }) (random_pred ctx child)

let add_project ctx child =
  match schema_of ctx child with
  | [] -> None
  | cols ->
    let n = List.length cols in
    let width =
      (* SELECT-everything projections are common in practice and are what
         identity-projection removal fires on. *)
      if Prng.chance ctx.g 0.25 then n else 1 + Prng.int ctx.g (min 4 n)
    in
    let picked = Prng.sample ctx.g width cols in
    (* Keep child order for readability. *)
    let picked =
      List.filter
        (fun (c : Props.col_info) ->
          List.exists (fun (p : Props.col_info) -> Ident.equal p.id c.id) picked)
        cols
    in
    let base = List.map (fun (c : Props.col_info) -> (c.id, S.Col c.id)) picked in
    let computed =
      let numeric =
        List.filter (fun (c : Props.col_info) -> Datatype.is_numeric c.ty) cols
      in
      if numeric <> [] && Prng.chance ctx.g 0.2 then
        let c = Prng.pick ctx.g numeric in
        [ ( Ident.make (Ident.fresh_rel ()) "expr",
            S.Arith (S.Add, S.Col c.id, S.int (1 + Prng.int ctx.g 9)) ) ]
      else []
    in
    Some (L.Project { cols = base @ computed; child })

let agg_over ctx (cols : Props.col_info list) =
  let numeric = List.filter (fun (c : Props.col_info) -> Datatype.is_numeric c.ty) cols in
  let id () = Ident.make (Ident.fresh_rel ()) "agg" in
  if numeric = [] || Prng.chance ctx.g 0.2 then (id (), A.CountStar)
  else
    let c = Prng.pick ctx.g numeric in
    let e = S.Col (c : Props.col_info).id in
    let f =
      Prng.pick ctx.g
        [ A.Sum e; A.Min e; A.Max e; A.Sum e; A.Min e; A.Count e; A.Avg e ]
    in
    (id (), f)

let add_groupby ctx child =
  match schema_of ctx child with
  | [] -> None
  | cols ->
    let join_bias =
      match child with
      | L.Join { kind = L.Inner | L.LeftOuter | L.Cross; pred; left; right } ->
        let lids = Props.output_idents ctx.cat left in
        let rids = Props.output_idents ctx.cat right in
        let lc, rc = Props.equi_join_columns pred lids rids in
        let equi = Ident.Set.elements (Ident.Set.union lc rc) in
        if equi = [] then None else Some equi
      | _ -> None
    in
    let keys =
      match join_bias with
      | Some equi when Prng.chance ctx.g 0.75 ->
        let extra =
          if Prng.chance ctx.g 0.3 then
            [ (Prng.pick ctx.g cols : Props.col_info).id ]
          else []
        in
        List.sort_uniq Ident.compare (equi @ extra)
      | _ -> (
        (* Sometimes group on a candidate key (single-row groups): that is
           the only way group-by elimination can fire. *)
        match Props.keys ctx.cat child with
        | key :: _ when Prng.chance ctx.g 0.25 && not (Ident.Set.is_empty key) ->
          Ident.Set.elements key
        | _ ->
          if Prng.chance ctx.g 0.15 then []
          else
            let picked = Prng.sample ctx.g (1 + Prng.int ctx.g 2) cols in
            List.map (fun (c : Props.col_info) -> c.id) picked)
    in
    (* Bias aggregates toward the left side when the child is a join, so
       group-by push-down stays reachable. *)
    let agg_cols =
      match child with
      | L.Join { left; _ } when Prng.chance ctx.g 0.8 -> (
        match Props.schema ctx.cat left with Ok lc -> lc | Error _ -> cols)
      | _ -> cols
    in
    let n_aggs = 1 + if Prng.chance ctx.g 0.3 then 1 else 0 in
    let aggs = List.init n_aggs (fun _ -> agg_over ctx agg_cols) in
    if keys = [] && aggs = [] then None
    else Some (L.GroupBy { keys; aggs; child })

let add_sort ctx child =
  match schema_of ctx child with
  | [] -> None
  | cols ->
    let picked = Prng.sample ctx.g (1 + Prng.int ctx.g 2) cols in
    let keys =
      List.map
        (fun (c : Props.col_info) ->
          (c.id, if Prng.bool ctx.g then L.Asc else L.Desc))
        picked
    in
    Some (L.Sort { keys; child })

let add_join ctx kind left right =
  match kind with
  | L.Cross -> Some (L.Join { kind; pred = S.true_; left; right })
  | _ ->
    Option.map
      (fun pred -> L.Join { kind; pred; left; right })
      (join_pred ctx ~left ~right)

(* Injection of a type signature into a column list: greedily pick, for
   each wanted type, an unused column of that type. *)
let inject sig_types cols =
  let rec go used = function
    | [] -> Some []
    | ty :: rest -> (
      let candidate =
        List.find_opt
          (fun (c : Props.col_info) ->
            Datatype.equal c.ty ty
            && not (List.exists (Ident.equal c.id) used))
          cols
      in
      match candidate with
      | None -> None
      | Some c ->
        Option.map (fun tail -> c :: tail) (go (c.id :: used) rest))
  in
  go [] sig_types

(* Project [child] down to [cols] — unless that is exactly its output
   already, in which case the projection would only obscure the shape the
   pattern asked for. *)
let project_to ?(current = []) (cols : Props.col_info list) child =
  let identity =
    List.length current = List.length cols
    && List.for_all2
         (fun (a : Props.col_info) (b : Props.col_info) -> Ident.equal a.id b.id)
         current cols
  in
  if identity then child
  else
    L.Project
      { cols = List.map (fun (c : Props.col_info) -> (c.id, S.Col c.id)) cols; child }

let build_setop kind a b =
  match kind with
  | L.KUnionAll -> Some (L.UnionAll (a, b))
  | L.KUnion -> Some (L.Union (a, b))
  | L.KIntersect -> Some (L.Intersect (a, b))
  | L.KExcept -> Some (L.Except (a, b))
  | _ -> None

let add_setop ctx kind a b =
  let ac = schema_of ctx a and bc = schema_of ctx b in
  let types cols = List.map (fun (c : Props.col_info) -> c.ty) cols in
  let aligned =
    match inject (types ac) bc with
    | Some picked -> Some (a, project_to ~current:bc picked b)
    | None -> (
      match inject (types bc) ac with
      | Some picked -> Some (project_to ~current:ac picked a, b)
      | None -> (
        (* Common signature: a's columns whose types also appear in b. *)
        let rec common acc_used = function
          | [] -> []
          | (c : Props.col_info) :: rest -> (
            let avail =
              List.find_opt
                (fun (d : Props.col_info) ->
                  Datatype.equal c.ty d.ty
                  && not (List.exists (Ident.equal d.id) acc_used))
                bc
            in
            match avail with
            | None -> common acc_used rest
            | Some d -> (c, d) :: common (d.id :: acc_used) rest)
        in
        match common [] ac with
        | [] -> None
        | pairs ->
          Some (project_to (List.map fst pairs) a, project_to (List.map snd pairs) b)))
  in
  match aligned with
  | None -> None
  | Some (a', b') -> build_setop kind a' b'

(* ------------------------------------------------------------------ *)
(* Padding                                                             *)
(* ------------------------------------------------------------------ *)

let pad ctx tree n =
  let wrap tree =
    let r = Prng.float ctx.g 1.0 in
    if r < 0.35 then add_filter ctx tree
    else if r < 0.50 then add_project ctx tree
    else if r < 0.62 then add_groupby ctx tree
    else if r < 0.67 then Some (L.Distinct tree)
    else if r < 0.72 then add_sort ctx tree
    else if r < 0.95 then begin
      let other = fresh_get ctx in
      let kind =
        Prng.pick ctx.g
          [ L.Inner; L.Inner; L.Inner; L.LeftOuter; L.Semi; L.Cross ]
      in
      if Prng.bool ctx.g then add_join ctx kind tree other
      else add_join ctx kind other tree
    end
    else add_setop ctx L.KUnionAll tree (refresh_labels tree)
  in
  let rec go tree budget attempts =
    if budget <= 0 || attempts > 4 * n then tree
    else
      match wrap tree with
      | Some tree' -> go tree' (budget - (L.size tree' - L.size tree)) (attempts + 1)
      | None -> go tree budget (attempts + 1)
  in
  go tree n 0
