type t = { target : string; kind : Divergence.kind; shape : int }

let make target (kind : Divergence.kind) reduced =
  { target = Core.Suite.target_name target;
    kind;
    shape = Relalg.Logical.shape_hash reduced }

let key s =
  Printf.sprintf "%s-%s-%08x" s.target (Divergence.kind_name s.kind)
    (s.shape land 0xffffffff)

let equal a b = String.equal (key a) (key b)
let pp fmt s = Format.pp_print_string fmt (key s)
