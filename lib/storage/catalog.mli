(** A named collection of tables — the "test database" the framework is
    invoked against (the paper assumes a fixed input database, §2.3). *)

type t

val empty : t
val add : t -> Table.t -> t
(** Replaces any previous table with the same name. *)

val of_tables : Table.t list -> t
val find : t -> string -> Table.t option
val find_exn : t -> string -> Table.t
(** Raises [Not_found]. *)

val mem : t -> string -> bool
val table_names : t -> string list
(** Sorted. *)

val tables : t -> Table.t list
val schemas : t -> Schema.t list

val referenced_key : t -> Schema.foreign_key -> Schema.t option
(** The schema a foreign key points at, when present in the catalog. *)

val content_hash : t -> int
(** Structural fingerprint of the whole catalog — table names, column
    names and types, and every row in order. Keys the on-disk caches
    ({!Diskcache}): equal catalogs hash equal, any data or schema change
    invalidates dependent entries. Non-negative. *)

val pp : Format.formatter -> t -> unit
