let now_ns () = Monotonic_clock.now ()
let now_s () = Int64.to_float (now_ns ()) *. 1e-9
let ns_between t0 t1 = Float.max 0.0 (Int64.to_float (Int64.sub t1 t0))
let ns_to_ms ns = ns *. 1e-6
let ns_to_us ns = ns *. 1e-3
