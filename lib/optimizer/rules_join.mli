(** Exploration rules over joins: commutativity, associativity,
    select-pushdown, outer-join simplification and commutation,
    join/outer-join associativity (the paper's §3 example), semi-join to
    inner join. Stated declaratively in the rewrite DSL and compiled; the
    original closure implementations remain available for parity testing
    and as a fallback. *)

val dsl : Dsl.Rdsl.rule list
(** The family as DSL rules, in registry order. *)

val rules : Rule.t list
(** [List.map Dsl.Rdsl.compile dsl]. *)

val closure_rules : Rule.t list
(** The original hand-written closures, same names and order as [rules];
    test_dsl.ml checks substitute-level parity against them. *)
