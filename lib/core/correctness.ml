module RS = Executor.Resultset

type bug = {
  target : Suite.target;
  query_index : int;
  query : Relalg.Logical.t;
  expected_rows : int;
  actual_rows : int;
  diff : RS.diff;
  detail : string;
}

type report = {
  pairs_checked : int;
  executions : int;
  skipped_identical : int;
  bugs : bug list;
  errors : (string * string) list;
}

(* Two-phase so both phases are embarrassingly parallel: first every
   distinct picked query's baseline (optimize + execute, once each),
   then every target's variants against the now read-only baseline
   table. Tasks return pure per-task results; counters are summed and
   bug/error lists concatenated in assignment order on the calling
   domain, so the report — including the [executions] count, which
   increments per successful optimize whether or not the execution then
   errors, exactly as the historical sequential loop did — is identical
   for any pool size. Executions go through [Executor.Cache], whose
   per-domain hit/miss pattern varies with the pool size; that is why
   [executions] counts logical executions, never physical ones. *)
let run ?(pool = Par.Pool.sequential) fw (suite : Suite.t)
    (sol : Compress.solution) =
  let cat = Framework.catalog fw in
  let distinct_picked =
    let seen = Hashtbl.create 16 in
    List.concat_map
      (fun (_, picks) ->
        List.filter_map
          (fun (q, _) ->
            if Hashtbl.mem seen q then None
            else begin
              Hashtbl.replace seen q ();
              Some q
            end)
          picks)
      sol.assignment
  in
  let baselines =
    Par.Pool.map_list pool
      (fun q ->
        match Framework.optimize fw suite.entries.(q).query with
        | Error e -> (q, 0, Error e)
        | Ok res -> (
          match Executor.Cache.run ~site:"validate" cat res.plan with
          | Error e -> (q, 1, Error e)
          | Ok rows -> (q, 1, Ok (res.plan, rows))))
      distinct_picked
  in
  let executions = ref 0 in
  let baseline_cache : (int, (Optimizer.Physical.t * RS.t, string) result) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (q, execs, r) ->
      executions := !executions + execs;
      (* Force the baseline's cached sort on this domain before phase 2
         shares it read-only across the pool's workers. *)
      (match r with
      | Ok (_, rows) -> ignore (RS.normalized rows)
      | Error _ -> ());
      Hashtbl.replace baseline_cache q r)
    baselines;
  let validations =
    Par.Pool.map_list pool
      (fun (target, picks) ->
        let disabled = Suite.rules_of target in
        let pairs = ref 0 and execs = ref 0 and skipped = ref 0 in
        let bugs = ref [] and errors = ref [] in
        List.iter
          (fun (q, _edge_cost) ->
            incr pairs;
            let context =
              Printf.sprintf "%s / query %d" (Suite.target_name target) q
            in
            match Hashtbl.find baseline_cache q with
            | Error e -> errors := (context, "baseline: " ^ e) :: !errors
            | Ok (base_plan, expected) -> (
              match Framework.optimize fw ~disabled suite.entries.(q).query with
              | Error e -> errors := (context, "variant: " ^ e) :: !errors
              | Ok res ->
                if Optimizer.Physical.equal res.plan base_plan then incr skipped
                else begin
                  incr execs;
                  match Executor.Cache.run ~site:"validate" cat res.plan with
                  | Error e -> errors := (context, "variant exec: " ^ e) :: !errors
                  | Ok actual -> (
                    match RS.diverges expected actual with
                    | None -> ()
                    | Some diff ->
                      bugs :=
                        { target;
                          query_index = q;
                          query = suite.entries.(q).query;
                          expected_rows = RS.row_count expected;
                          actual_rows = RS.row_count actual;
                          diff;
                          detail = RS.diff_summary diff }
                        :: !bugs)
                end))
          picks;
        (!pairs, !execs, !skipped, List.rev !bugs, List.rev !errors))
      sol.assignment
  in
  let pairs = ref 0 and skipped = ref 0 in
  let bugs = ref [] and errors = ref [] in
  List.iter
    (fun (p, e, s, bs, es) ->
      pairs := !pairs + p;
      executions := !executions + e;
      skipped := !skipped + s;
      bugs := !bugs @ bs;
      errors := !errors @ es)
    validations;
  { pairs_checked = !pairs;
    executions = !executions;
    skipped_identical = !skipped;
    bugs = !bugs;
    errors = !errors }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>checked %d (rule, query) pairs; %d plan executions; %d skipped (identical plans); %d bugs; %d errors"
    r.pairs_checked r.executions r.skipped_identical (List.length r.bugs)
    (List.length r.errors);
  List.iter
    (fun b ->
      Format.fprintf fmt "@,BUG %s on query #%d: %d rows vs %d rows (%s)"
        (Suite.target_name b.target) b.query_index b.expected_rows b.actual_rows
        b.detail)
    r.bugs;
  List.iter (fun (c, e) -> Format.fprintf fmt "@,error %s: %s" c e) r.errors;
  Format.fprintf fmt "@]"
