(* Rules as data: a declarative pattern->rewrite language over relation /
   predicate / projection metavariables, an interpreter compiling a term
   pair into today's [Rule.t], and a bounded set-theoretic verification
   oracle over symbolic tables (module [Verify]).

   The compiler is written construct-by-construct against the closure
   rules it replaces: for every ported rule the compiled [apply] produces
   byte-identical substitutes (test/test_dsl.ml proves this per rule on
   random trees), so swapping the registry over to DSL-compiled rules is
   a behavioral no-op for the engine, §3 generation, compression,
   discovery and the corpora. *)

open Relalg
module L = Logical
module S = Scalar

type rv = int
type pv = int
type dv = int

(* A column scope a predicate can be split against. *)
type scope =
  | Rels of rv list  (* the output columns of these relation metavariables *)
  | Keys  (* the grouping keys of the rule's (single) GroupBy binder *)

(* Predicate expressions. [Ppart]/[Presid] are the two halves of
   [Rule.split_by_scope]; [Pfirst]/[Prest] the first-conjunct split of
   SelectSplit; [Prename] the positional rename applied on the right
   branch of a set operation; [Psubst] substitution of a projection's
   definitions into a predicate. *)
type pexp =
  | Ptrue
  | Pvar of pv
  | Pand of pexp * pexp
  | Ppart of pexp * scope
  | Presid of pexp * scope
  | Pfirst of pv
  | Prest of pv
  | Prename of pexp * rv * rv
  | Psubst of dv * pexp

(* Projection-definition expressions: a bound definition list, or the
   composition outer-after-inner of ProjectMerge. *)
type dexp = Dvar of dv | Dcompose of dv * dv

(* Tree terms. On the lhs, [Filter]/[Join] must carry a [Pvar] binder,
   [Proj] a [Dvar] binder, and [GroupBy] binds the keys/aggs slot.
   [Filter_nontrivial] (rhs only) wraps a filter only when its predicate
   is not [true]; [Keep_schema] (rhs only) is the identity projection
   restoring the lhs root's output columns. *)
type term =
  | Var of rv
  | Filter of pexp * term
  | Filter_nontrivial of pexp * term
  | Join of L.join_kind * pexp * term * term
  | Proj of dexp * term
  | GroupBy of term
  | Distinct of term
  | UnionAll of term * term
  | Union of term * term
  | Keep_schema of term

(* Side-conditions. The first group is semantic (the rewrite is unsound
   without them; the oracle models them); the second is firing-only (they
   restrict when the rule fires, not when it is sound; the oracle ignores
   them). *)
type side =
  | Null_rejecting of pv * rv list
  | Key_within_equi of pv * rv * rv
      (* equi-join columns of the pv on the second rv's side cover a
         candidate key of it *)
  | Trivial of pv
  | Identity_proj of dv * rv
  | Scoped_within of pv * rv list
  (* firing-only: *)
  | Splittable of pv  (* >= 2 conjuncts *)
  | Some_pushed of (pexp * scope) list  (* at least one part is non-trivial *)

type rule = { name : string; lhs : term; rhs : term; sides : side list }

let firing_only = function
  | Splittable _ | Some_pushed _ -> true
  | Null_rejecting _ | Key_within_equi _ | Trivial _ | Identity_proj _
  | Scoped_within _ -> false

(* ------------------------------------------------------------------ *)
(* Structure                                                           *)
(* ------------------------------------------------------------------ *)

let rec pattern_of_term = function
  | Var _ -> Pattern.Any
  | Filter (_, t) | Filter_nontrivial (_, t) ->
    Pattern.Op (L.KFilter, [ pattern_of_term t ])
  | Join (k, _, a, b) ->
    Pattern.Op (L.KJoin k, [ pattern_of_term a; pattern_of_term b ])
  | Proj (_, t) -> Pattern.Op (L.KProject, [ pattern_of_term t ])
  | GroupBy t -> Pattern.Op (L.KGroupBy, [ pattern_of_term t ])
  | Distinct t -> Pattern.Op (L.KDistinct, [ pattern_of_term t ])
  | UnionAll (a, b) ->
    Pattern.Op (L.KUnionAll, [ pattern_of_term a; pattern_of_term b ])
  | Union (a, b) -> Pattern.Op (L.KUnion, [ pattern_of_term a; pattern_of_term b ])
  | Keep_schema t -> pattern_of_term t

let pattern r = pattern_of_term r.lhs

let rec term_rvars = function
  | Var r -> [ r ]
  | Filter (_, t) | Filter_nontrivial (_, t) | Proj (_, t) | GroupBy t
  | Distinct t | Keep_schema t -> term_rvars t
  | Join (_, _, a, b) | UnionAll (a, b) | Union (a, b) ->
    term_rvars a @ term_rvars b

let rvars r = List.sort_uniq compare (term_rvars r.lhs)

(* The relation metavariables contributing to a term's output row
   (Semi/AntiSemi joins output only their left side). *)
let rec output_rvs = function
  | Var r -> [ r ]
  | Filter (_, t) | Filter_nontrivial (_, t) | Proj (_, t) | GroupBy t
  | Distinct t | Keep_schema t -> output_rvs t
  | Join ((L.Semi | L.AntiSemi), _, a, _) -> output_rvs a
  | Join (_, _, a, b) -> output_rvs a @ output_rvs b
  | UnionAll (a, _) | Union (a, _) -> output_rvs a

(* ------------------------------------------------------------------ *)
(* Concrete interpretation: matching, side checks, building            *)
(* ------------------------------------------------------------------ *)

type env = {
  cat : Storage.Catalog.t;
  root : L.t;
  mutable rels : (rv * L.t) list;
  mutable preds : (pv * S.t) list;
  mutable defs : (dv * (Ident.t * S.t) list) list;
  mutable gb : (Ident.t list * (Ident.t * Aggregate.t) list) option;
}

let rel env r = List.assoc r env.rels
let pred env p = List.assoc p env.preds
let defs env d = List.assoc d env.defs

exception No_match

let rec match_lhs env t (tree : L.t) =
  match (t, tree) with
  | Var r, _ -> env.rels <- (r, tree) :: env.rels
  | Filter (Pvar p, t'), L.Filter { pred; child } ->
    env.preds <- (p, pred) :: env.preds;
    match_lhs env t' child
  | Join (k, Pvar p, a, b), L.Join { kind; pred; left; right } when kind = k ->
    env.preds <- (p, pred) :: env.preds;
    match_lhs env a left;
    match_lhs env b right
  | Proj (Dvar d, t'), L.Project { cols; child } ->
    env.defs <- (d, cols) :: env.defs;
    match_lhs env t' child
  | GroupBy t', L.GroupBy { keys; aggs; child } ->
    env.gb <- Some (keys, aggs);
    match_lhs env t' child
  | Distinct t', L.Distinct child -> match_lhs env t' child
  | UnionAll (a, b), L.UnionAll (l, r) | Union (a, b), L.Union (l, r) ->
    match_lhs env a l;
    match_lhs env b r
  | _ -> raise No_match

let scope_ids env = function
  | Rels rvs ->
    List.fold_left
      (fun acc r -> Ident.Set.union acc (Props.output_idents env.cat (rel env r)))
      Ident.Set.empty rvs
  | Keys -> (
    match env.gb with
    | Some (keys, _) -> Ident.Set.of_list keys
    | None -> raise No_match)

(* Schema lookups may fail on invalid intermediate trees; like the closure
   rules' [let*] idiom that makes the whole rule a no-op. *)
exception Build_failed

let schema_exn env tree =
  match Props.schema env.cat tree with Ok c -> c | Error _ -> raise Build_failed

let lookup_def cols id =
  List.find_map (fun (out, e) -> if Ident.equal out id then Some e else None) cols

let rec eval_pexp env = function
  | Ptrue -> S.true_
  | Pvar p -> pred env p
  | Pand (a, b) -> S.And (eval_pexp env a, eval_pexp env b)
  | Ppart (e, s) -> fst (Rule.split_by_scope (eval_pexp env e) (scope_ids env s))
  | Presid (e, s) -> snd (Rule.split_by_scope (eval_pexp env e) (scope_ids env s))
  | Pfirst p -> (
    match S.conjuncts (pred env p) with c :: _ -> c | [] -> S.true_)
  | Prest p -> (
    match S.conjuncts (pred env p) with _ :: rest -> S.conj rest | [] -> S.true_)
  | Prename (e, a, b) ->
    let ac = schema_exn env (rel env a) and bc = schema_exn env (rel env b) in
    S.rename (Rule.positional_rename ac bc) (eval_pexp env e)
  | Psubst (d, e) -> Rule.subst (lookup_def (defs env d)) (eval_pexp env e)

let eval_dexp env = function
  | Dvar d -> defs env d
  | Dcompose (outer, inner) ->
    let inner_defs = defs env inner in
    List.map (fun (out, e) -> (out, Rule.subst (lookup_def inner_defs) e)) (defs env outer)

let check_side env = function
  | Null_rejecting (p, rvs) -> S.is_null_rejecting (pred env p) (scope_ids env (Rels rvs))
  | Key_within_equi (p, l, r) ->
    let lids = Props.output_idents env.cat (rel env l) in
    let rids = Props.output_idents env.cat (rel env r) in
    let _, rcols = Props.equi_join_columns (pred env p) lids rids in
    Props.has_key_within env.cat (rel env r) rcols
  | Trivial p -> S.equal (pred env p) S.true_
  | Identity_proj (d, r) ->
    let cols = defs env d in
    let child_cols = schema_exn env (rel env r) in
    List.length cols = List.length child_cols
    && List.for_all2
         (fun (id, e) (ci : Props.col_info) ->
           Ident.equal id ci.id
           && match e with S.Col c -> Ident.equal c ci.id | _ -> false)
         cols child_cols
  | Scoped_within (p, rvs) ->
    Ident.Set.subset (S.columns (pred env p)) (scope_ids env (Rels rvs))
  | Splittable p -> (
    match S.conjuncts (pred env p) with _ :: _ :: _ -> true | _ -> false)
  | Some_pushed parts ->
    List.exists
      (fun (e, s) -> not (S.equal (eval_pexp env (Ppart (e, s))) S.true_))
      parts

let rec build env = function
  | Var r -> rel env r
  | Filter (e, t) -> L.Filter { pred = eval_pexp env e; child = build env t }
  | Filter_nontrivial (e, t) ->
    let p = eval_pexp env e in
    let child = build env t in
    if S.equal p S.true_ then child else L.Filter { pred = p; child }
  | Join (k, e, a, b) ->
    L.Join { kind = k; pred = eval_pexp env e; left = build env a; right = build env b }
  | Proj (d, t) -> L.Project { cols = eval_dexp env d; child = build env t }
  | GroupBy t -> (
    match env.gb with
    | Some (keys, aggs) -> L.GroupBy { keys; aggs; child = build env t }
    | None -> raise Build_failed)
  | Distinct t -> L.Distinct (build env t)
  | UnionAll (a, b) -> L.UnionAll (build env a, build env b)
  | Union (a, b) -> L.Union (build env a, build env b)
  | Keep_schema t -> Rule.identity_project (schema_exn env env.root) (build env t)

(* One application of the rule at the root of [tree]: matching, side
   checks, rhs construction. [None] when the rule does not fire. *)
let image cat r tree =
  let env = { cat; root = tree; rels = []; preds = []; defs = []; gb = None } in
  match match_lhs env r.lhs tree with
  | exception No_match -> None
  | () -> (
    match List.for_all (check_side env) r.sides with
    | exception Build_failed -> None
    | false -> None
    | true -> ( match build env r.rhs with exception Build_failed -> None | t -> Some t))

(* [compile] lives below the printers: the compiled rule's content
   fingerprint digests the deterministic [to_string] rendering of the
   whole term (lhs, rhs, side conditions), so any edit to the rule's
   definition — not just its name or pattern — yields a new identity. *)

(* ------------------------------------------------------------------ *)
(* Rule-pair composition (§3.2), derived from the DSL terms            *)
(* ------------------------------------------------------------------ *)

let compose r1 r2 =
  let p1 = pattern r1 and p2 = pattern r2 in
  let substitutions base other =
    List.filter_map
      (fun i -> Pattern.substitute_leaf base i other)
      (List.init (Pattern.leaves base) Fun.id)
  in
  let roots =
    [ Pattern.Op (L.KJoin L.Inner, [ p1; p2 ]); Pattern.Op (L.KUnionAll, [ p1; p2 ]) ]
  in
  let candidates = substitutions p1 p2 @ substitutions p2 p1 @ roots in
  List.stable_sort (fun a b -> compare (Pattern.size a) (Pattern.size b)) candidates

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let scope_to_string = function
  | Rels rvs -> String.concat "" (List.map (fun r -> String.make 1 (Char.chr (65 + r))) rvs)
  | Keys -> "keys"

let rec pexp_to_string = function
  | Ptrue -> "true"
  | Pvar p -> Printf.sprintf "p%d" p
  | Pand (a, b) -> Printf.sprintf "(%s & %s)" (pexp_to_string a) (pexp_to_string b)
  | Ppart (e, s) -> Printf.sprintf "%s|%s" (pexp_to_string e) (scope_to_string s)
  | Presid (e, s) -> Printf.sprintf "%s\\%s" (pexp_to_string e) (scope_to_string s)
  | Pfirst p -> Printf.sprintf "first(p%d)" p
  | Prest p -> Printf.sprintf "rest(p%d)" p
  | Prename (e, a, b) ->
    Printf.sprintf "%s[%c->%c]" (pexp_to_string e) (Char.chr (65 + a)) (Char.chr (65 + b))
  | Psubst (d, e) -> Printf.sprintf "%s[d%d]" (pexp_to_string e) d

let dexp_to_string = function
  | Dvar d -> Printf.sprintf "d%d" d
  | Dcompose (a, b) -> Printf.sprintf "d%d.d%d" a b

let kind_to_string = function
  | L.Inner -> "Join"
  | L.Cross -> "Cross"
  | L.LeftOuter -> "LOJ"
  | L.RightOuter -> "ROJ"
  | L.FullOuter -> "FOJ"
  | L.Semi -> "Semi"
  | L.AntiSemi -> "AntiSemi"

let rec term_to_string = function
  | Var r -> String.make 1 (Char.chr (65 + r))
  | Filter (e, t) -> Printf.sprintf "Select[%s](%s)" (pexp_to_string e) (term_to_string t)
  | Filter_nontrivial (e, t) ->
    Printf.sprintf "Select?[%s](%s)" (pexp_to_string e) (term_to_string t)
  | Join (k, e, a, b) ->
    Printf.sprintf "%s[%s](%s, %s)" (kind_to_string k) (pexp_to_string e)
      (term_to_string a) (term_to_string b)
  | Proj (d, t) -> Printf.sprintf "Project[%s](%s)" (dexp_to_string d) (term_to_string t)
  | GroupBy t -> Printf.sprintf "GbAgg(%s)" (term_to_string t)
  | Distinct t -> Printf.sprintf "Distinct(%s)" (term_to_string t)
  | UnionAll (a, b) -> Printf.sprintf "UnionAll(%s, %s)" (term_to_string a) (term_to_string b)
  | Union (a, b) -> Printf.sprintf "Union(%s, %s)" (term_to_string a) (term_to_string b)
  | Keep_schema t -> Printf.sprintf "Project[lhs-schema](%s)" (term_to_string t)

let side_to_string = function
  | Null_rejecting (p, rvs) ->
    Printf.sprintf "p%d null-rejecting on %s" p (scope_to_string (Rels rvs))
  | Key_within_equi (p, _, r) ->
    Printf.sprintf "equi-join columns of p%d cover a key of %c" p (Char.chr (65 + r))
  | Trivial p -> Printf.sprintf "p%d = true" p
  | Identity_proj (d, r) ->
    Printf.sprintf "d%d is the identity projection of %c" d (Char.chr (65 + r))
  | Scoped_within (p, rvs) ->
    Printf.sprintf "columns(p%d) within %s" p (scope_to_string (Rels rvs))
  | Splittable p -> Printf.sprintf "p%d has >= 2 conjuncts" p
  | Some_pushed _ -> "some part is pushed"

let to_string r =
  Printf.sprintf "%s: %s -> %s%s" r.name (term_to_string r.lhs) (term_to_string r.rhs)
    (match r.sides with
    | [] -> ""
    | sides -> "  when " ^ String.concat "; " (List.map side_to_string sides))

let pp fmt r = Format.pp_print_string fmt (to_string r)

let fingerprint r =
  Digest.to_hex (Digest.string ("rdsl\x00" ^ to_string r))

let compile r =
  Rule.make ~fingerprint:(fingerprint r) r.name (pattern r) (fun cat tree ->
      match image cat r tree with Some t -> [ t ] | None -> [])

(* A machine-generated soundness note: which side-conditions carry the
   rule's soundness and which merely gate firing. *)
let soundness_note r =
  let semantic = List.filter (fun s -> not (firing_only s)) r.sides in
  let firing = List.filter firing_only r.sides in
  let part l = String.concat "; " (List.map side_to_string l) in
  match (semantic, firing) with
  | [], [] -> "unconditional"
  | [], f -> Printf.sprintf "unconditional (fires when %s)" (part f)
  | s, [] -> Printf.sprintf "requires %s" (part s)
  | s, f -> Printf.sprintf "requires %s (fires when %s)" (part s) (part f)

(* ------------------------------------------------------------------ *)
(* Mutations: systematically broken variants for rule-definition       *)
(* fuzzing. Each mutation is the kind of mistake a rule author makes:  *)
(* dropping a side-condition, forgetting a conjunct, pushing a whole   *)
(* predicate where only a scoped part is legal, dropping a rename or a *)
(* substitution.                                                       *)
(* ------------------------------------------------------------------ *)

let rec map_pexp f e =
  let e = f e in
  match e with
  | Ptrue | Pvar _ | Pfirst _ | Prest _ -> e
  | Pand (a, b) -> Pand (map_pexp f a, map_pexp f b)
  | Ppart (a, s) -> Ppart (map_pexp f a, s)
  | Presid (a, s) -> Presid (map_pexp f a, s)
  | Prename (a, x, y) -> Prename (map_pexp f a, x, y)
  | Psubst (d, a) -> Psubst (d, map_pexp f a)

let rec map_term_pexp f = function
  | Var r -> Var r
  | Filter (e, t) -> Filter (f e, map_term_pexp f t)
  | Filter_nontrivial (e, t) -> Filter_nontrivial (f e, map_term_pexp f t)
  | Join (k, e, a, b) -> Join (k, f e, map_term_pexp f a, map_term_pexp f b)
  | Proj (d, t) -> Proj (d, map_term_pexp f t)
  | GroupBy t -> GroupBy (map_term_pexp f t)
  | Distinct t -> Distinct (map_term_pexp f t)
  | UnionAll (a, b) -> UnionAll (map_term_pexp f a, map_term_pexp f b)
  | Union (a, b) -> Union (map_term_pexp f a, map_term_pexp f b)
  | Keep_schema t -> Keep_schema (map_term_pexp f t)

(* Apply [rewrite] at each rewritable pexp site of the rhs, one site per
   mutant. [rewrite] returns [Some e'] on sites it applies to. *)
let pexp_site_mutants tag rewrite r =
  let count = ref 0 in
  let total =
    let n = ref 0 in
    ignore
      (map_term_pexp
         (map_pexp (fun e ->
              (match rewrite e with Some _ -> incr n | None -> ());
              e))
         r.rhs);
    !n
  in
  List.init total (fun site ->
      count := 0;
      let rhs =
        map_term_pexp
          (map_pexp (fun e ->
               match rewrite e with
               | Some e' ->
                 let here = !count in
                 incr count;
                 if here = site then e' else e
               | None -> e))
          r.rhs
      in
      (Printf.sprintf "%s@%d" tag site, { r with name = r.name; rhs }))

let mutations r =
  let dropped_sides =
    List.filter_map
      (fun s ->
        if firing_only s then None
        else
          Some
            ( "drop-side:" ^ side_to_string s,
              { r with sides = List.filter (fun s' -> s' <> s) r.sides } ))
      r.sides
  in
  let rewrites =
    pexp_site_mutants "drop-conjunct"
      (function Pand (a, _) -> Some a | _ -> None)
      r
    @ pexp_site_mutants "widen-part" (function Ppart (e, _) -> Some e | _ -> None) r
    @ pexp_site_mutants "drop-residual"
        (function Presid _ -> Some Ptrue | _ -> None)
        r
    @ pexp_site_mutants "drop-rest" (function Prest _ -> Some Ptrue | _ -> None) r
    @ pexp_site_mutants "drop-rename" (function Prename (e, _, _) -> Some e | _ -> None) r
    @ pexp_site_mutants "drop-subst" (function Psubst (_, e) -> Some e | _ -> None) r
  in
  List.map (fun (tag, m) -> (tag, { m with name = r.name ^ "!" ^ tag })) (dropped_sides @ rewrites)

(* ------------------------------------------------------------------ *)
(* The bounded symbolic oracle                                         *)
(* ------------------------------------------------------------------ *)

module Verify = struct
  type counterexample = {
    instances : (string * string) list;  (** relation metavariable -> instance *)
    valuation : string list;  (** predicate atom assignments *)
    lhs_rows : string;
    rhs_rows : string;
  }

  type verdict = Sound_bounded | Refuted of counterexample | Unknown of string

  (* Symbolic rows. [Map] assigns each visible relation metavariable a
     universe element or outer-join padding; [Prj] is an (injectively
     modeled) projection application; [Grp] an aggregation output,
     injective in (key class, member multiset). *)
  type cell = Elem of int | Pad

  type row =
    | Rmap of (rv * cell) list  (* sorted by rv *)
    | Prj of dv * row
    | Grp of int * row list  (* key class, sorted members *)

  type parttag = Whole | First | Rest | Scoped of scope | Resid
  type atomkey = Krow of row | Kkey of int
  type atom = pv * parttag * atomkey

  exception Unknown_exn of string

  let unknown fmt = Printf.ksprintf (fun s -> raise (Unknown_exn s)) fmt

  (* ---- static analysis ---- *)

  let rec pexp_pvars = function
    | Ptrue -> []
    | Pvar p | Pfirst p | Prest p -> [ p ]
    | Pand (a, b) -> pexp_pvars a @ pexp_pvars b
    | Ppart (e, _) | Presid (e, _) | Prename (e, _, _) | Psubst (_, e) -> pexp_pvars e

  let rec term_pexps = function
    | Var _ -> []
    | Filter (e, t) | Filter_nontrivial (e, t) -> e :: term_pexps t
    | Join (_, e, a, b) -> (e :: term_pexps a) @ term_pexps b
    | Proj (_, t) | GroupBy t | Distinct t | Keep_schema t -> term_pexps t
    | UnionAll (a, b) | Union (a, b) -> term_pexps a @ term_pexps b

  type analysis = {
    rule : rule;
    rvs : rv list;
    universe_of : rv -> int;  (* set-op connected rvars share a universe *)
    tags_of : pv -> parttag list;  (* the pvar's part decomposition *)
    binding : pv -> rv list;
        (* the rvars visible at the pvar's lhs binding site: the pvar is a
           function of (at most) their columns, so its atoms are keyed on
           the row restricted to them *)
    null_rejecting : pv -> rv list;  (* [] when unconstrained *)
    trivial : pv -> bool;
    identity_dv : dv -> bool;
    key_constraints : (pv * rv) list;  (* at most one match on this rv's side *)
    dup_free : rv -> bool;
    gb_rv : rv option;  (* principal rvar under the GroupBy binder *)
    lhs_out : rv list;
  }

  let principal_rvar t =
    match List.sort_uniq compare (term_rvars t) with
    | [ r ] -> r
    | _ -> unknown "set-operation branch is not a single relation metavariable"

  let rec setop_pairs = function
    | Var _ -> []
    | Filter (_, t) | Filter_nontrivial (_, t) | Proj (_, t) | GroupBy t
    | Distinct t | Keep_schema t -> setop_pairs t
    | Join (_, _, a, b) -> setop_pairs a @ setop_pairs b
    | UnionAll (a, b) | Union (a, b) ->
      ((principal_rvar a, principal_rvar b) :: setop_pairs a) @ setop_pairs b

  let rec find_gb = function
    | Var _ -> None
    | Filter (_, t) | Filter_nontrivial (_, t) | Proj (_, t) | Distinct t
    | Keep_schema t -> find_gb t
    | GroupBy t -> Some (principal_rvar t)
    | Join (_, _, a, b) | UnionAll (a, b) | Union (a, b) -> (
      match find_gb a with Some r -> Some r | None -> find_gb b)

  (* Scopes each pvar is split against, anywhere in the rule. *)
  let pvar_scopes r =
    let table : (pv, scope list) Hashtbl.t = Hashtbl.create 8 in
    let first_rest : (pv, unit) Hashtbl.t = Hashtbl.create 8 in
    let add p s =
      let cur = Option.value ~default:[] (Hashtbl.find_opt table p) in
      if not (List.mem s cur) then Hashtbl.replace table p (s :: cur)
    in
    let rec walk = function
      | Ptrue | Pvar _ -> ()
      | Pfirst p | Prest p -> Hashtbl.replace first_rest p ()
      | Pand (a, b) -> walk a; walk b
      | Ppart (e, s) | Presid (e, s) ->
        List.iter (fun p -> add p s) (pexp_pvars e);
        walk e
      | Prename (e, _, _) | Psubst (_, e) -> walk e
    in
    List.iter walk (term_pexps r.lhs @ term_pexps r.rhs);
    (table, first_rest)

  let analyze (r : rule) : analysis =
    let rvs = rvars r in
    if List.length rvs > 3 then unknown "more than 3 relation metavariables";
    (* set-op connected rvars share one universe *)
    let pairs = setop_pairs r.lhs @ setop_pairs r.rhs in
    let parent = Array.init (List.length rvs) Fun.id in
    let index rv =
      match List.find_index (Int.equal rv) rvs with
      | Some i -> i
      | None -> unknown "rhs uses an unbound relation metavariable"
    in
    let rec find i = if parent.(i) = i then i else find parent.(i) in
    List.iter (fun (a, b) -> parent.(find (index a)) <- find (index b)) pairs;
    let universe_of rv = find (index rv) in
    (* Rows are keyed by universe representative, so set-op branches (and
       renamed predicates) are directly comparable; canonicalize every
       rvar set accordingly. *)
    let canon rvs = List.sort_uniq compare (List.map universe_of rvs) in
    let scopes, first_rest = pvar_scopes r in
    let scopes_disjoint a b =
      match (a, b) with
      | Rels x, Rels y -> not (List.exists (fun u -> List.mem u (canon y)) (canon x))
      | Keys, Keys -> false
      | Keys, Rels _ | Rels _, Keys -> false
    in
    let tags_of p =
      match (Hashtbl.find_opt scopes p, Hashtbl.mem first_rest p) with
      | Some _, true -> unknown "pvar p%d is both scope-split and conjunct-split" p
      | None, true -> [ First; Rest ]
      | None, false -> [ Whole ]
      | Some ss, false ->
        let rec check = function
          | [] -> ()
          | s :: rest ->
            if List.for_all (scopes_disjoint s) rest then check rest
            else unknown "pvar p%d split against overlapping scopes" p
        in
        check ss;
        List.map (fun s -> Scoped s) (List.sort compare ss) @ [ Resid ]
    in
    (* The rvars a pvar can reference: the output rvars visible at its
       lhs binding site, further tightened by a [Scoped_within] side. *)
    let bindings =
      let rec walk acc = function
        | Var _ -> acc
        | Filter (e, t) | Filter_nontrivial (e, t) ->
          let acc =
            match e with Pvar p -> (p, List.sort_uniq compare (output_rvs t)) :: acc | _ -> acc
          in
          walk acc t
        | Join (_, e, a, b) ->
          let acc =
            match e with
            | Pvar p -> (p, List.sort_uniq compare (output_rvs a @ output_rvs b)) :: acc
            | _ -> acc
          in
          walk (walk acc a) b
        | Proj (_, t) | GroupBy t | Distinct t | Keep_schema t -> walk acc t
        | UnionAll (a, b) | Union (a, b) -> walk (walk acc a) b
      in
      walk [] r.lhs
    in
    let binding p =
      canon
        (match
           List.find_map
             (function Scoped_within (p', rvs) when p' = p -> Some rvs | _ -> None)
             r.sides
         with
        | Some rvs -> rvs
        | None -> (
          match List.assoc_opt p bindings with Some rvs -> rvs | None -> rvs))
    in
    let null_rejecting p =
      canon
        (List.concat_map
           (function Null_rejecting (p', rvs) when p' = p -> rvs | _ -> [])
           r.sides)
    in
    let trivial p = List.mem (Trivial p) r.sides in
    let identity_dv d =
      List.exists (function Identity_proj (d', _) -> d' = d | _ -> false) r.sides
    in
    let key_constraints =
      List.filter_map
        (function Key_within_equi (p, _, rr) -> Some (p, universe_of rr) | _ -> None)
        r.sides
    in
    let dup_free rv = List.exists (fun (_, rr) -> rr = universe_of rv) key_constraints in
    let gb_rv =
      match (find_gb r.lhs, find_gb r.rhs) with
      | Some g, _ -> Some (universe_of g)
      | None, Some _ -> unknown "GroupBy on rhs without an lhs binder"
      | None, None -> None
    in
    { rule = r;
      rvs;
      universe_of;
      tags_of;
      binding;
      null_rejecting;
      trivial;
      identity_dv;
      key_constraints;
      dup_free;
      gb_rv;
      lhs_out = canon (output_rvs r.lhs) }

  (* ---- evaluation under a partial valuation ---- *)

  exception Need of atom

  type ctx = {
    a : analysis;
    inst : (rv * int list) list;  (* universe-element multiset per rvar *)
    g : int -> int;  (* key class per universe element of the gb child *)
    valuation : (atom, bool) Hashtbl.t;
  }

  let atom_value ctx atom =
    match Hashtbl.find_opt ctx.valuation atom with
    | Some b -> b
    | None -> raise (Need atom)

  let rec restrict_row row rvs =
    match row with
    | Rmap cells -> Rmap (List.filter (fun (rv, _) -> List.mem rv rvs) cells)
    | Prj (d, r) -> Prj (d, restrict_row r rvs)
    | Grp (k, ms) -> Grp (k, List.map (fun r -> restrict_row r rvs) ms)

  let key_class ctx row =
    match row with
    | Grp (k, _) -> k
    | Rmap cells -> (
      match (ctx.a.gb_rv, cells) with
      | Some gbr, _ -> (
        match List.assoc_opt gbr cells with
        | Some (Elem e) -> ctx.g e
        | _ -> unknown "grouping over a padded or absent row")
      | None, _ -> unknown "Keys scope without a GroupBy binder")
    | Prj _ -> unknown "grouping over a projected row"

  let row_has_pad row rvs =
    match row with
    | Rmap cells -> List.exists (fun (rv, c) -> List.mem rv rvs && c = Pad) cells
    | _ -> false

  (* The value of pvar [p]'s parts selected by [sel] on [row]. *)
  let pvar_value ctx sel p row =
    if ctx.a.trivial p then true
    else
      let tags = List.filter sel (ctx.a.tags_of p) in
      List.for_all
        (fun tag ->
          let bound = ctx.a.binding p in
          let key =
            match tag with
            | Scoped (Rels rvs) ->
              let rvs = List.map ctx.a.universe_of rvs in
              Krow (restrict_row row (List.filter (fun rv -> List.mem rv bound) rvs))
            | Scoped Keys -> Kkey (key_class ctx row)
            | Whole | First | Rest | Resid -> Krow (restrict_row row bound)
          in
          atom_value ctx (p, tag, key))
        tags

  let rec eval_pexp_sym ctx sel row = function
    | Ptrue -> true
    | Pvar p ->
      (match ctx.a.null_rejecting p with
      | [] -> pvar_value ctx sel p row
      | rvs -> if row_has_pad row rvs then false else pvar_value ctx sel p row)
    | Pand (a, b) -> eval_pexp_sym ctx sel row a && eval_pexp_sym ctx sel row b
    | Ppart (e, s) ->
      eval_pexp_sym ctx (fun tag -> sel tag && tag = Scoped s) row e
    | Presid (e, s) ->
      eval_pexp_sym ctx (fun tag -> sel tag && tag <> Scoped s) row e
    | Pfirst p -> pvar_value ctx (fun tag -> sel tag && tag = First) p row
    | Prest p -> pvar_value ctx (fun tag -> sel tag && tag = Rest) p row
    | Prename (e, _, _) ->
      (* Both renamed rvars live in one set-op universe and rows are keyed
         by its representative, so the rename is the symbolic identity. *)
      eval_pexp_sym ctx sel row e
    | Psubst (d, e) ->
      let row' = if ctx.a.identity_dv d then row else Prj (d, row) in
      eval_pexp_sym ctx sel row' e

  let all_tags _ = true

  let merge_rows a b =
    match (a, b) with
    | Rmap x, Rmap y ->
      let cells = List.sort compare (x @ y) in
      let rec dup = function
        | (a, _) :: ((b, _) :: _ as rest) -> a = b || dup rest
        | _ -> false
      in
      if dup cells then unknown "join of relation metavariables sharing a universe"
      else Rmap cells
    | _ -> unknown "join over non-relational rows"

  let pad_row ctx t =
    Rmap
      (List.map (fun rv -> (rv, Pad))
         (List.sort_uniq compare (List.map ctx.a.universe_of (output_rvs t))))

  let rec eval ctx (t : term) : row list =
    match t with
    | Var rv ->
      let u = ctx.a.universe_of rv in
      List.map (fun e -> Rmap [ (u, Elem e) ]) (List.assoc rv ctx.inst)
    | Filter (e, t') | Filter_nontrivial (e, t') ->
      List.filter (fun row -> eval_pexp_sym ctx all_tags row e) (eval ctx t')
    | Join (kind, e, lt, rt) -> (
      let lrows = eval ctx lt and rrows = eval ctx rt in
      let p l r = eval_pexp_sym ctx all_tags (merge_rows l r) e in
      match kind with
      | L.Inner ->
        List.concat_map
          (fun l -> List.filter_map (fun r -> if p l r then Some (merge_rows l r) else None) rrows)
          lrows
      | L.Cross ->
        (* the executor ignores a cross join's predicate slot *)
        List.concat_map (fun l -> List.map (merge_rows l) rrows) lrows
      | L.LeftOuter ->
        List.concat_map
          (fun l ->
            match List.filter (p l) rrows with
            | [] -> [ merge_rows l (pad_row ctx rt) ]
            | ms -> List.map (merge_rows l) ms)
          lrows
      | L.RightOuter ->
        List.concat_map
          (fun r ->
            match List.filter (fun l -> p l r) lrows with
            | [] -> [ merge_rows (pad_row ctx lt) r ]
            | ms -> List.map (fun l -> merge_rows l r) ms)
          rrows
      | L.FullOuter ->
        let inner =
          List.concat_map
            (fun l ->
              List.filter_map (fun r -> if p l r then Some (merge_rows l r) else None) rrows)
            lrows
        in
        let lpad =
          List.filter_map
            (fun l -> if List.exists (p l) rrows then None else Some (merge_rows l (pad_row ctx rt)))
            lrows
        in
        let rpad =
          List.filter_map
            (fun r ->
              if List.exists (fun l -> p l r) lrows then None
              else Some (merge_rows (pad_row ctx lt) r))
            rrows
        in
        inner @ lpad @ rpad
      | L.Semi -> List.filter (fun l -> List.exists (p l) rrows) lrows
      | L.AntiSemi -> List.filter (fun l -> not (List.exists (p l) rrows)) lrows)
    | Proj (d, t') ->
      let wrap =
        match d with
        | Dvar d -> fun row -> if ctx.a.identity_dv d then row else Prj (d, row)
        | Dcompose (outer, inner) ->
          fun row ->
            let row = if ctx.a.identity_dv inner then row else Prj (inner, row) in
            if ctx.a.identity_dv outer then row else Prj (outer, row)
      in
      List.map wrap (eval ctx t')
    | GroupBy t' ->
      let rows = eval ctx t' in
      let keyed = List.map (fun row -> (key_class ctx row, row)) rows in
      let keys = List.sort_uniq compare (List.map fst keyed) in
      List.map
        (fun k ->
          Grp (k, List.sort compare (List.filter_map (fun (k', r) -> if k = k' then Some r else None) keyed)))
        keys
    | Distinct t' -> List.sort_uniq compare (eval ctx t')
    | UnionAll (a, b) ->
      (* branches share a universe and rows are keyed by its
         representative: concatenation needs no re-keying *)
      eval ctx a @ eval ctx b
    | Union (a, b) -> List.sort_uniq compare (eval ctx a @ eval ctx b)
    | Keep_schema t' ->
      List.map
        (fun row ->
          match row with
          | Rmap cells -> Rmap (List.filter (fun (rv, _) -> List.mem rv ctx.a.lhs_out) cells)
          | _ -> unknown "schema restoration over a non-relational row")
        (eval ctx t')

  (* ---- key-constraint check over the assigned atoms ---- *)

  (* Excluded valuations: a [Key_within_equi (p, _, rr)] rule only fires
     when each left row matches at most one distinct [rr] row; valuations
     where some assigned atoms of [p] say otherwise are outside the
     rule's firing condition. *)
  let constraints_ok ctx =
    List.for_all
      (fun (p, rr) ->
        let trues = ref [] in
        Hashtbl.iter
          (fun (p', _, key) v ->
            if p' = p && v then
              match key with
              | Krow (Rmap cells) -> (
                match List.assoc_opt rr cells with
                | Some (Elem e) ->
                  trues := (List.filter (fun (rv, _) -> rv <> rr) cells, e) :: !trues
                | _ -> ())
              | _ -> ())
          ctx.valuation;
        let rest_keys = List.sort_uniq compare (List.map fst !trues) in
        List.for_all
          (fun k ->
            List.length (List.sort_uniq compare (List.filter_map (fun (k', e) -> if k = k' then Some e else None) !trues)) <= 1)
          rest_keys)
      ctx.a.key_constraints

  (* ---- drivers ---- *)

  let rv_name rv = String.make 1 (Char.chr (65 + rv))

  let rec row_to_string = function
    | Rmap cells ->
      "("
      ^ String.concat ","
          (List.map
             (fun (rv, c) ->
               match c with
               | Elem e -> Printf.sprintf "%s%d" (rv_name rv) e
               | Pad -> Printf.sprintf "%s·null" (rv_name rv))
             cells)
      ^ ")"
    | Prj (d, r) -> Printf.sprintf "d%d%s" d (row_to_string r)
    | Grp (k, ms) ->
      Printf.sprintf "g%d{%s}" k (String.concat " " (List.map row_to_string ms))

  let rows_to_string rows =
    match List.sort compare rows with
    | [] -> "{}"
    | rows -> "{" ^ String.concat " " (List.map row_to_string rows) ^ "}"

  let tag_to_string = function
    | Whole -> ""
    | First -> ".first"
    | Rest -> ".rest"
    | Scoped s -> "|" ^ scope_to_string s
    | Resid -> ".resid"

  let atom_to_string ((p, tag, key) : atom) =
    Printf.sprintf "p%d%s%s" p (tag_to_string tag)
      (match key with Krow r -> row_to_string r | Kkey k -> Printf.sprintf "(key g%d)" k)

  let describe_counterexample ctx lhs rhs =
    { instances =
        List.map
          (fun (rv, elems) ->
            ( rv_name rv,
              "{"
              ^ String.concat ","
                  (List.map (fun e -> Printf.sprintf "%s%d" (rv_name rv) e) elems)
              ^ "}" ))
          ctx.inst;
      valuation =
        List.sort compare
          (Hashtbl.fold
             (fun atom v acc ->
               Printf.sprintf "%s=%b" (atom_to_string atom) v :: acc)
             ctx.valuation []);
      lhs_rows = rows_to_string lhs;
      rhs_rows = rows_to_string rhs }

  exception Refuted_exn of counterexample

  let multiset_equal a b = List.sort compare a = List.sort compare b

  (* Universe-element multisets per rvar: empty, a singleton, a duplicated
     row, two distinct rows (the last two dropped to duplicate-free
     instances under a key constraint). *)
  let instances_for a rv =
    if a.dup_free rv then [ []; [ 0 ]; [ 0; 1 ] ] else [ []; [ 0 ]; [ 0; 0 ]; [ 0; 1 ] ]

  let distinct_cost inst =
    List.fold_left (fun acc (_, elems) -> acc + List.length (List.sort_uniq compare elems)) 0 inst

  (* Keep the small-scope search tractable on 3-relation rules: cap the
     total number of distinct symbolic rows across all metavariables. *)
  let max_total_distinct = 5

  let rec cartesian = function
    | [] -> [ [] ]
    | choices :: rest ->
      let tails = cartesian rest in
      List.concat_map (fun c -> List.map (fun t -> c :: t) tails) choices

  let partitions_of_two = [ (fun e -> e); (fun _ -> 0) ]
  (* key functions over a 2-element universe: injective or constant *)

  let verify ?(max_valuations = 1 lsl 18) (r : rule) : verdict =
    match analyze r with
    | exception Unknown_exn m -> Unknown m
    | a -> (
      let budget = ref max_valuations in
      let check_combo inst g =
        let rec go (pending : (atom * bool) list) (assigned : (atom * bool) list) =
          decr budget;
          if !budget < 0 then unknown "valuation budget exhausted";
          let ctx = { a; inst; g; valuation = Hashtbl.create 32 } in
          List.iter (fun (atom, v) -> Hashtbl.replace ctx.valuation atom v) assigned;
          ignore pending;
          match (eval ctx r.lhs, eval ctx r.rhs) with
          | exception Need atom ->
            go [] ((atom, true) :: assigned);
            go [] ((atom, false) :: assigned)
          | lhs, rhs ->
            if constraints_ok ctx && not (multiset_equal lhs rhs) then
              raise (Refuted_exn (describe_counterexample ctx lhs rhs))
        in
        go [] []
      in
      let instances =
        cartesian (List.map (fun rv -> List.map (fun i -> (rv, i)) (instances_for a rv)) a.rvs)
        |> List.filter (fun inst -> distinct_cost inst <= max_total_distinct)
      in
      try
        List.iter
          (fun inst ->
            match a.gb_rv with
            | None -> check_combo inst (fun _ -> 0)
            | Some _ -> List.iter (fun g -> check_combo inst g) partitions_of_two)
          instances;
        Sound_bounded
      with
      | Refuted_exn cx -> Refuted cx
      | Unknown_exn m -> Unknown m)

  let verdict_to_string = function
    | Sound_bounded -> "sound (bounded)"
    | Refuted cx ->
      Printf.sprintf "REFUTED: instances %s; valuation %s; lhs %s vs rhs %s"
        (String.concat " "
           (List.map (fun (rv, i) -> Printf.sprintf "%s=%s" rv i) cx.instances))
        (String.concat "," cx.valuation)
        cx.lhs_rows cx.rhs_rows
    | Unknown m -> "unknown: " ^ m
end
