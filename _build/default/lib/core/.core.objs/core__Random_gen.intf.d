lib/core/random_gen.mli: Arggen Relalg
