open Relalg
module L = Logical
module S = Scalar

let ( let* ) o f = match o with Ok v -> f v | Error _ -> []

let agg_ids aggs = Ident.Set.of_list (List.map fst aggs)

(* Join(GbAgg(X), Y)  ->  GbAgg'(Join(X, Y)), regrouping on the original
   keys plus all of Y's columns. Preconditions: the join predicate must not
   reference aggregate outputs (every X-row of a group then joins the same
   Y rows), and Y must be duplicate-free (it has a candidate key), so the
   wider grouping does not collapse distinct Y rows. *)
let gbagg_pull_above_join =
  Rule.make "GbAggPullAboveJoin"
    (Pattern.Op
       ( L.KJoin L.Inner,
         [ Pattern.Op (L.KGroupBy, [ Pattern.Any ]); Pattern.Any ] ))
    (fun cat t ->
      match t with
      | L.Join
          { kind = L.Inner;
            pred;
            left = L.GroupBy { keys; aggs; child = x };
            right = y } ->
        let pred_cols = S.columns pred in
        let touches_aggs =
          not (Ident.Set.is_empty (Ident.Set.inter pred_cols (agg_ids aggs)))
        in
        if touches_aggs || Props.keys cat y = [] then []
        else
          let* out_cols = Props.schema cat t in
          let* y_cols = Props.schema cat y in
          let new_keys = keys @ List.map (fun (c : Props.col_info) -> c.id) y_cols in
          [ Rule.identity_project out_cols
              (L.GroupBy
                 { keys = new_keys;
                   aggs;
                   child = L.Join { kind = L.Inner; pred; left = x; right = y } }) ]
      | _ -> [])

(* GbAgg(Join(X, Y))  ->  Join(GbAgg'(X), Y). Preconditions: aggregates
   read only X; the X-side predicate columns are grouping keys (groups
   survive or die whole); Y joins on a key subset of the Y-side grouping
   keys (no per-group fan-out beyond distinct kY values); and at least one
   grouping key comes from X (a pushed global aggregate would fabricate a
   row from an empty X). *)
let gbagg_push_below_join =
  Rule.make "GbAggPushBelowJoin"
    (Pattern.Op
       ( L.KGroupBy,
         [ Pattern.Op (L.KJoin L.Inner, [ Pattern.Any; Pattern.Any ]) ] ))
    (fun cat t ->
      match t with
      | L.GroupBy
          { keys; aggs; child = L.Join { kind = L.Inner; pred; left = x; right = y } } ->
        let xids = Props.output_idents cat x in
        let yids = Props.output_idents cat y in
        let key_set = Ident.Set.of_list keys in
        let kx = List.filter (fun k -> Ident.Set.mem k xids) keys in
        let ky = List.filter (fun k -> Ident.Set.mem k yids) keys in
        let aggs_read_x_only =
          List.for_all (fun (_, a) -> Ident.Set.subset (Aggregate.columns a) xids) aggs
        in
        let pred_x_cols = Ident.Set.inter (S.columns pred) xids in
        let preconditions =
          aggs_read_x_only
          && Ident.Set.subset pred_x_cols key_set
          && Props.has_key_within cat y (Ident.Set.of_list ky)
          && kx <> []
          && List.length kx + List.length ky = List.length keys
        in
        if not preconditions then []
        else
          let* out_cols = Props.schema cat t in
          [ Rule.identity_project out_cols
              (L.Join
                 { kind = L.Inner;
                   pred;
                   left = L.GroupBy { keys = kx; aggs; child = x };
                   right = y }) ]
      | _ -> [])

(* Grouping on a key of the input: every group has exactly one row, so
   SUM/MIN/MAX degenerate to their argument and COUNT-star to 1. *)
let gbagg_eliminate_on_key =
  Rule.make "GbAggEliminateOnKey"
    (Pattern.Op (L.KGroupBy, [ Pattern.Any ]))
    (fun cat t ->
      match t with
      | L.GroupBy { keys; aggs; child } ->
        let single_row_groups =
          Props.has_key_within cat child (Ident.Set.of_list keys)
        in
        let expressible = function
          | Aggregate.Sum e | Aggregate.Min e | Aggregate.Max e -> Some e
          | Aggregate.CountStar -> Some (S.int 1)
          | Aggregate.Count _ | Aggregate.Avg _ -> None
        in
        if not single_row_groups then []
        else
          let items = List.map (fun (id, a) -> (id, expressible a)) aggs in
          if List.exists (fun (_, e) -> e = None) items then []
          else
            let cols =
              List.map (fun k -> (k, S.Col k)) keys
              @ List.map (fun (id, e) -> (id, Option.get e)) items
            in
            [ L.Project { cols; child } ]
      | _ -> [])

let distinct_elim_on_key =
  Rule.make "DistinctElimOnKey"
    (Pattern.Op (L.KDistinct, [ Pattern.Any ]))
    (fun cat t ->
      match t with
      | L.Distinct child -> if Props.keys cat child <> [] then [ child ] else []
      | _ -> [])

let union_to_unionall =
  Rule.make "UnionToUnionAllDistinct"
    (Pattern.Op (L.KUnion, [ Pattern.Any; Pattern.Any ]))
    (fun _cat t ->
      match t with
      | L.Union (a, b) -> [ L.Distinct (L.UnionAll (a, b)) ]
      | _ -> [])

(* Set-operation commutes; a projection renames the (positional) output
   back to the left branch's column identifiers. *)
let setop_commute op_kind name rebuild destruct =
  Rule.make name
    (Pattern.Op (op_kind, [ Pattern.Any; Pattern.Any ]))
    (fun cat t ->
      match destruct t with
      | Some (a, b) ->
        let* ac = Props.schema cat a in
        let* bc = Props.schema cat b in
        let cols =
          List.map2
            (fun (ca : Props.col_info) (cb : Props.col_info) -> (ca.id, S.Col cb.id))
            ac bc
        in
        [ L.Project { cols; child = rebuild b a } ]
      | None -> [])

let unionall_commute =
  setop_commute L.KUnionAll "UnionAllCommute"
    (fun a b -> L.UnionAll (a, b))
    (function L.UnionAll (a, b) -> Some (a, b) | _ -> None)

let union_commute =
  setop_commute L.KUnion "UnionCommute"
    (fun a b -> L.Union (a, b))
    (function L.Union (a, b) -> Some (a, b) | _ -> None)

let intersect_commute =
  setop_commute L.KIntersect "IntersectCommute"
    (fun a b -> L.Intersect (a, b))
    (function L.Intersect (a, b) -> Some (a, b) | _ -> None)

let unionall_assoc_left =
  Rule.make "UnionAllAssocLeft"
    (Pattern.Op
       (L.KUnionAll, [ Pattern.Op (L.KUnionAll, [ Pattern.Any; Pattern.Any ]); Pattern.Any ]))
    (fun _cat t ->
      match t with
      | L.UnionAll (L.UnionAll (a, b), c) -> [ L.UnionAll (a, L.UnionAll (b, c)) ]
      | _ -> [])

let unionall_assoc_right =
  Rule.make "UnionAllAssocRight"
    (Pattern.Op
       (L.KUnionAll, [ Pattern.Any; Pattern.Op (L.KUnionAll, [ Pattern.Any; Pattern.Any ]) ]))
    (fun _cat t ->
      match t with
      | L.UnionAll (a, L.UnionAll (b, c)) -> [ L.UnionAll (L.UnionAll (a, b), c) ]
      | _ -> [])

(* INTERSECT / EXCEPT as (anti-)semi-joins under null-safe row equality. *)
let intersect_to_semi =
  Rule.make "IntersectToSemiJoin"
    (Pattern.Op (L.KIntersect, [ Pattern.Any; Pattern.Any ]))
    (fun cat t ->
      match t with
      | L.Intersect (a, b) ->
        let* ac = Props.schema cat a in
        let* bc = Props.schema cat b in
        [ L.Distinct
            (L.Join
               { kind = L.Semi;
                 pred = Rule.null_safe_row_eq ac bc;
                 left = a;
                 right = b }) ]
      | _ -> [])

let except_to_antisemi =
  Rule.make "ExceptToAntiSemiJoin"
    (Pattern.Op (L.KExcept, [ Pattern.Any; Pattern.Any ]))
    (fun cat t ->
      match t with
      | L.Except (a, b) ->
        let* ac = Props.schema cat a in
        let* bc = Props.schema cat b in
        [ L.Distinct
            (L.Join
               { kind = L.AntiSemi;
                 pred = Rule.null_safe_row_eq ac bc;
                 left = a;
                 right = b }) ]
      | _ -> [])

let sort_merge =
  Rule.make "SortMerge"
    (Pattern.Op (L.KSort, [ Pattern.Op (L.KSort, [ Pattern.Any ]) ]))
    (fun _cat t ->
      match t with
      | L.Sort { keys; child = L.Sort { child; _ } } -> [ L.Sort { keys; child } ]
      | _ -> [])

let rules =
  [ gbagg_pull_above_join; gbagg_push_below_join; gbagg_eliminate_on_key;
    distinct_elim_on_key; union_to_unionall; unionall_commute; union_commute;
    intersect_commute; unionall_assoc_left; unionall_assoc_right;
    intersect_to_semi; except_to_antisemi; sort_merge ]
