(* Observability layer added with the span profiler: trace-consumer
   fan-out and per-line flushing, profile aggregation invariants
   (self/total accounting, percentile monotonicity, folded stacks),
   multi-domain trace well-formedness under a 4-domain pool, and the
   bench-diff regression gate. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* Profiler + metrics state is global; leave both as we found them. *)
let with_profile f =
  Obs.Profile.disable ();
  Obs.Profile.reset ();
  Obs.Profile.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Profile.disable ();
      Obs.Profile.reset ())
    f

let spin () =
  (* A few microseconds of real work, so span durations are nonzero. *)
  let acc = ref 0 in
  for i = 1 to 20_000 do
    acc := !acc + i
  done;
  ignore (Sys.opaque_identity !acc)

let row name =
  match List.find_opt (fun (r : Obs.Profile.row) -> r.name = name) (Obs.Profile.rows ()) with
  | Some r -> r
  | None -> Alcotest.failf "no profile row for %S" name

let close_to a b =
  (* Self/total identities hold up to float summation order. *)
  Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

(* ------------------------------------------------------------------ *)
(* Profile aggregation                                                 *)
(* ------------------------------------------------------------------ *)

let test_profile_self_total () =
  with_profile @@ fun () ->
  for _ = 1 to 5 do
    Obs.Trace.with_span "pa" (fun () ->
        spin ();
        Obs.Trace.with_span "pb" spin;
        Obs.Trace.with_span "pb" spin)
  done;
  let a = row "pa" and b = row "pb" in
  check int_t "pa count" 5 a.count;
  check int_t "pb count" 10 b.count;
  check bool_t "self <= total" true (a.self_ns <= a.total_ns);
  (* Every pb span is a direct child of pa, so pa's child time is
     exactly pb's total: self(pa) = total(pa) - total(pb). *)
  check bool_t "self = total - children" true
    (close_to a.self_ns (a.total_ns -. b.total_ns));
  (* A leaf's self time is its total. *)
  check bool_t "leaf self = total" true (close_to b.self_ns b.total_ns);
  check int_t "no unmatched ends" 0 (Obs.Profile.unmatched ())

let test_profile_percentiles_monotone () =
  with_profile @@ fun () ->
  for _ = 1 to 50 do
    Obs.Trace.with_span "pq" spin
  done;
  let r = row "pq" in
  check bool_t "min <= p50" true (r.min_ns <= r.p50_ns);
  check bool_t "p50 <= p95" true (r.p50_ns <= r.p95_ns);
  check bool_t "p95 <= max" true (r.p95_ns <= r.max_ns);
  check bool_t "positive durations" true (r.min_ns > 0.0)

let test_profile_folded_stacks () =
  with_profile @@ fun () ->
  Obs.Trace.with_span "fa" (fun () -> Obs.Trace.with_span "fb" spin);
  Obs.Trace.with_span "fb" spin;
  let folded = Obs.Profile.folded () in
  let has path = List.mem_assoc path folded in
  check bool_t "root path" true (has "fa");
  check bool_t "nested path" true (has "fa;fb");
  check bool_t "same name at top level is a distinct path" true (has "fb");
  (* Folded self times and the flat rows are two views of one total. *)
  let sum_folded = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 folded in
  let sum_rows =
    List.fold_left (fun acc (r : Obs.Profile.row) -> acc +. r.self_ns) 0.0
      (Obs.Profile.rows ())
  in
  check bool_t "folded sums to rows" true (close_to sum_folded sum_rows)

let test_profile_disable_keeps_data () =
  with_profile @@ fun () ->
  Obs.Trace.with_span "pd" spin;
  Obs.Profile.disable ();
  check bool_t "disabled" false (Obs.Profile.enabled ());
  Obs.Trace.with_span "pd" spin;
  check int_t "no recording while disabled" 1 (row "pd").count;
  Obs.Profile.reset ();
  check int_t "reset drops rows" 0 (List.length (Obs.Profile.rows ()))

let test_profile_json_projection () =
  with_profile @@ fun () ->
  Obs.Trace.with_span "pj" spin;
  let j = Obs.Profile.to_json () in
  (* Must be a self-contained, serializable document. *)
  match Obs.Json.of_string (Obs.Json.to_string j) with
  | Error e -> Alcotest.failf "profile json does not round-trip: %s" e
  | Ok _ ->
    check bool_t "spans member present" true (Obs.Json.member "spans" j <> None);
    check bool_t "folded member present" true (Obs.Json.member "folded" j <> None)

(* ------------------------------------------------------------------ *)
(* Multi-domain tracing                                                *)
(* ------------------------------------------------------------------ *)

let str_member key j =
  match Obs.Json.member key j with Some (Obs.Json.String s) -> s | _ -> ""

let int_member key j =
  match Option.bind (Obs.Json.member key j) Obs.Json.to_int with
  | Some i -> i
  | None -> -1

let test_multidomain_trace_wellformed () =
  Obs.Metrics.set_enabled true;
  let buf = Buffer.create 4096 in
  Obs.Trace.start_buffer buf;
  Obs.Profile.enable ();
  let pool = Par.Pool.create ~jobs:4 () in
  let results =
    Fun.protect
      ~finally:(fun () ->
        Obs.Profile.disable ();
        Obs.Trace.stop ();
        Obs.Metrics.set_enabled false;
        Obs.Metrics.clear ();
        Obs.Profile.reset ())
      (fun () ->
        let r =
          Par.Pool.init pool 16 (fun i ->
              Obs.Trace.with_span "task"
                ~args:[ ("i", Obs.Json.Int i) ]
                (fun () ->
                  Obs.Trace.with_span "task.inner" spin;
                  i * i))
        in
        (* On a loaded 1-core machine the caller can drain the whole
           cursor before a helper wakes up; an explicit domain makes a
           second tid deterministic. *)
        Domain.join
          (Domain.spawn (fun () ->
               Obs.Trace.with_span "task" (fun () ->
                   Obs.Trace.with_span "task.inner" spin)));
        r)
  in
  check bool_t "results correct" true
    (results = Array.init 16 (fun i -> i * i));
  (* Every line of the concurrent trace must parse on its own... *)
  let events =
    Buffer.contents buf |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
    |> List.map (fun l ->
           match Obs.Json.of_string l with
           | Ok j -> j
           | Error e -> Alcotest.failf "unparseable trace line %S: %s" l e)
  in
  (* ...and the B/E events of each domain (tid) must nest like a stack. *)
  let tids =
    List.sort_uniq compare (List.map (fun e -> int_member "tid" e) events)
  in
  check bool_t "several domains emitted" true (List.length tids >= 2);
  List.iter
    (fun tid ->
      let mine = List.filter (fun e -> int_member "tid" e = tid) events in
      let leftover =
        List.fold_left
          (fun stack ev ->
            match str_member "ph" ev with
            | "B" -> str_member "name" ev :: stack
            | "E" -> (
              match stack with
              | top :: rest ->
                check bool_t "E matches innermost B" true
                  (top = str_member "name" ev);
                rest
              | [] -> Alcotest.fail "E without matching B")
            | _ -> stack)
          [] mine
      in
      check int_t "balanced per tid" 0 (List.length leftover))
    tids;
  (* The pool contributes counter samples and per-worker instants. *)
  check bool_t "queue-depth counters present" true
    (List.exists
       (fun e -> str_member "ph" e = "C" && str_member "name" e = "par.queue_depth")
       events);
  check bool_t "worker instants present" true
    (List.exists
       (fun e -> str_member "ph" e = "i" && str_member "name" e = "par.worker")
       events)

let test_multidomain_profile_rows () =
  Obs.Profile.disable ();
  Obs.Profile.reset ();
  Obs.Profile.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Profile.disable ();
      Obs.Profile.reset ())
    (fun () ->
      let pool = Par.Pool.create ~jobs:3 () in
      ignore
        (Par.Pool.init pool 12 (fun i ->
             Obs.Trace.with_span "mtask" spin;
             i));
      (* Task stealing is not guaranteed to involve a helper on a busy
         1-core machine; an explicit domain is. *)
      Domain.join (Domain.spawn (fun () -> Obs.Trace.with_span "mtask" spin));
      let r = row "mtask" in
      check int_t "all tasks profiled" 13 r.count;
      check bool_t "more than one emitting domain" true
        (List.length (Obs.Profile.rows_by_domain ()) >= 2))

(* ------------------------------------------------------------------ *)
(* Trace durability (per-line flush)                                   *)
(* ------------------------------------------------------------------ *)

let test_trace_flushes_per_line () =
  let path = Filename.temp_file "qtr_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Trace.start path;
      Obs.Trace.with_span "flushed" (fun () -> ());
      (* Before stop/close: the span must already be on disk. *)
      let ic = open_in path in
      let len = in_channel_length ic in
      close_in ic;
      Obs.Trace.stop ();
      check bool_t "events visible before stop" true (len > 0))

(* ------------------------------------------------------------------ *)
(* bench-diff regression gate                                          *)
(* ------------------------------------------------------------------ *)

module B = Obs.Benchcmp

let bench_doc ~speedup ~agree ~jobs4_identical =
  Obs.Json.Obj
    [ ( "details",
        Obs.Json.Obj
          [ ( "execute",
              Obs.Json.Obj
                [ ("speedup", Obs.Json.Float speedup);
                  ("agree", Obs.Json.Bool agree) ] );
            ( "parallel",
              Obs.Json.Obj
                [ ( "runs",
                    Obs.Json.List
                      [ Obs.Json.Obj
                          [ ("jobs", Obs.Json.Int 1);
                            ("identical_to_jobs1", Obs.Json.Bool true) ];
                        Obs.Json.Obj
                          [ ("jobs", Obs.Json.Int 4);
                            ("identical_to_jobs1", Obs.Json.Bool jobs4_identical);
                            ("speedup_vs_jobs1", Obs.Json.Float 1.4) ] ] ) ] ) ] ) ]

let specs =
  [ { B.path = "details/execute/speedup"; dir = B.Higher_is_better; kind = B.Ratio;
      threshold = 0.25 };
    { B.path = "details/execute/agree"; dir = B.Higher_is_better; kind = B.Flag;
      threshold = 0.0 };
    { B.path = "details/parallel/runs[jobs=4]/identical_to_jobs1";
      dir = B.Higher_is_better; kind = B.Flag; threshold = 0.0 } ]

let regressed findings = List.length (B.regressions findings)

let test_benchdiff_passes_identical () =
  let doc = bench_doc ~speedup:2.0 ~agree:true ~jobs4_identical:true in
  let fs = B.compare_results ~specs ~old_doc:doc ~new_doc:doc () in
  check int_t "all compared" 3 (List.length fs);
  check int_t "no regressions on identical docs" 0 (regressed fs)

let test_benchdiff_catches_injected_regression () =
  (* The synthetic injection of the acceptance criterion: halving a
     gated speedup must make the gate fire (qtr bench-diff exits 1 when
     [regressions] is non-empty). *)
  let old_doc = bench_doc ~speedup:2.0 ~agree:true ~jobs4_identical:true in
  let new_doc = bench_doc ~speedup:1.0 ~agree:true ~jobs4_identical:true in
  let fs = B.compare_results ~specs ~old_doc ~new_doc () in
  check bool_t "regression detected" true (regressed fs > 0);
  let f =
    List.find (fun (f : B.finding) -> f.spec.B.path = "details/execute/speedup") fs
  in
  check bool_t "classified Regressed" true (f.status = B.Regressed)

let test_benchdiff_flags_are_slack_immune () =
  let old_doc = bench_doc ~speedup:2.0 ~agree:true ~jobs4_identical:true in
  let new_doc = bench_doc ~speedup:2.0 ~agree:true ~jobs4_identical:false in
  (* Huge slack forgives any numeric wobble but never a flipped flag. *)
  let fs = B.compare_results ~specs ~slack:1000.0 ~old_doc ~new_doc () in
  check int_t "flag flip still fires" 1 (regressed fs);
  (* ...while slack does forgive a numeric drop of the same magnitude. *)
  let slow = bench_doc ~speedup:1.0 ~agree:true ~jobs4_identical:true in
  let fs' = B.compare_results ~specs ~slack:1000.0 ~old_doc ~new_doc:slow () in
  check int_t "numeric drop forgiven under slack" 0 (regressed fs')

let test_benchdiff_missing_and_improved () =
  let old_doc = bench_doc ~speedup:2.0 ~agree:true ~jobs4_identical:true in
  let better = bench_doc ~speedup:4.0 ~agree:true ~jobs4_identical:true in
  let fs = B.compare_results ~specs ~old_doc ~new_doc:better () in
  let f =
    List.find (fun (f : B.finding) -> f.spec.B.path = "details/execute/speedup") fs
  in
  check bool_t "doubling is Improved" true (f.status = B.Improved);
  (* A gated metric vanishing from the new document is a regression. *)
  let gone = Obs.Json.Obj [ ("details", Obs.Json.Obj []) ] in
  let fs' = B.compare_results ~specs ~old_doc ~new_doc:gone () in
  check int_t "vanished metrics regress" 3 (regressed fs')

let test_benchdiff_delta_and_negative_baselines () =
  let doc v = Obs.Json.Obj [ ("overhead", Obs.Json.Float v) ] in
  let dspec =
    [ { B.path = "overhead"; dir = B.Lower_is_better; kind = B.Delta;
        threshold = 0.1 } ]
  in
  (* A negative baseline (scheduler noise) compared with itself must
     pass — the relative band used to invert here. *)
  let fs = B.compare_results ~specs:dspec ~old_doc:(doc (-0.11)) ~new_doc:(doc (-0.11)) () in
  check int_t "identical negative overhead passes" 0 (regressed fs);
  (* Drift inside the absolute band passes; beyond it fires. *)
  let fs = B.compare_results ~specs:dspec ~old_doc:(doc (-0.02)) ~new_doc:(doc 0.05) () in
  check int_t "+7pp inside a 10pp band passes" 0 (regressed fs);
  let fs = B.compare_results ~specs:dspec ~old_doc:(doc (-0.02)) ~new_doc:(doc 0.2) () in
  check int_t "+22pp beyond a 10pp band fires" 1 (regressed fs);
  (* Relative kinds keep the band the right way round for negative
     baselines too. *)
  let rspec =
    [ { B.path = "overhead"; dir = B.Higher_is_better; kind = B.Ratio;
        threshold = 0.25 } ]
  in
  let fs = B.compare_results ~specs:rspec ~old_doc:(doc (-2.0)) ~new_doc:(doc (-2.0)) () in
  check int_t "identical negative ratio passes" 0 (regressed fs);
  let fs = B.compare_results ~specs:rspec ~old_doc:(doc (-2.0)) ~new_doc:(doc (-4.0)) () in
  check int_t "worsening negative ratio fires" 1 (regressed fs)

let test_benchdiff_path_selectors () =
  let doc = bench_doc ~speedup:2.5 ~agree:true ~jobs4_identical:true in
  check bool_t "plain path" true
    (B.lookup doc "details/execute/speedup" = Some 2.5);
  check bool_t "selector picks the jobs=4 element" true
    (B.lookup doc "details/parallel/runs[jobs=4]/speedup_vs_jobs1" = Some 1.4);
  check bool_t "bool reads as 1" true
    (B.lookup doc "details/parallel/runs[jobs=1]/identical_to_jobs1" = Some 1.0);
  check bool_t "missing path is None" true (B.lookup doc "details/nope" = None);
  (* extract flattens exactly the gate's view of the document. *)
  let kv = B.extract ~specs doc in
  check int_t "extract covers present specs" 3 (List.length kv)

let suite =
  [ ( "obs-profile",
      [ Alcotest.test_case "self/total accounting" `Quick test_profile_self_total;
        Alcotest.test_case "percentiles monotone" `Quick
          test_profile_percentiles_monotone;
        Alcotest.test_case "folded stacks" `Quick test_profile_folded_stacks;
        Alcotest.test_case "disable keeps data, reset drops" `Quick
          test_profile_disable_keeps_data;
        Alcotest.test_case "json projection" `Quick test_profile_json_projection;
        Alcotest.test_case "multi-domain trace well-formed" `Quick
          test_multidomain_trace_wellformed;
        Alcotest.test_case "multi-domain profile rows" `Quick
          test_multidomain_profile_rows;
        Alcotest.test_case "trace flushes per line" `Quick
          test_trace_flushes_per_line ] );
    ( "bench-diff",
      [ Alcotest.test_case "identical docs pass" `Quick test_benchdiff_passes_identical;
        Alcotest.test_case "injected regression fires the gate" `Quick
          test_benchdiff_catches_injected_regression;
        Alcotest.test_case "flags are slack-immune" `Quick
          test_benchdiff_flags_are_slack_immune;
        Alcotest.test_case "missing and improved statuses" `Quick
          test_benchdiff_missing_and_improved;
        Alcotest.test_case "delta kind and negative baselines" `Quick
          test_benchdiff_delta_and_negative_baselines;
        Alcotest.test_case "path selectors" `Quick test_benchdiff_path_selectors ] ) ]
