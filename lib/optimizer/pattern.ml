(* Re-export: patterns moved to [lib/dsl] so the declarative rule DSL can
   compile to [Rule.t] without a dependency cycle. *)
include Dsl.Pattern
