lib/storage/datatype.ml: Format Stdlib String
