lib/optimizer/rules_join.mli: Rule
