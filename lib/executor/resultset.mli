(** Query results and the bag comparison used for correctness validation
    (§2.3: "check if the results of executing the two plans are
    identical"). *)

type t = {
  cols : Relalg.Ident.t array;
  rows : Storage.Value.t array list;
}

val row_count : t -> int

val compare_rows : Storage.Value.t array -> Storage.Value.t array -> int
(** Lexicographic total order on rows ({!Storage.Value.compare_total} per
    column; NULL first). *)

val normalize : t -> t
(** Rows sorted by {!compare_rows} — the canonical form. *)

val equal_bag : t -> t -> bool
(** Same column identifiers in the same order, and the same multiset of
    rows. All equivalent plans for a query produce the same column list,
    so a mismatch of columns simply reports inequality. *)

type diff = {
  missing_count : int;  (** rows present only in the first (expected) bag *)
  extra_count : int;  (** rows present only in the second (actual) bag *)
  missing_sample : Storage.Value.t array list;  (** up to [samples] of them *)
  extra_sample : Storage.Value.t array list;
}

val no_diff : diff
(** The empty diff (both counts zero). *)

val bag_diff : ?samples:int -> t -> t -> diff
(** Multiset difference of the two row bags: a row appearing [m] times in
    the first and [n] times in the second contributes [max 0 (m-n)] to
    missing and [max 0 (n-m)] to extra. At most [samples] (default 3)
    example rows are retained per side. Columns are not compared. *)

val row_to_sql : Storage.Value.t array -> string
(** One row as a parenthesised tuple of SQL literals. *)

val diff_summary : diff -> string
(** Human-readable one-liner: per-side counts plus the sample rows. *)

val first_difference :
  t -> t -> (Storage.Value.t array option * Storage.Value.t array option) option
(** After normalization, the first position where the two results diverge
    (for bug reports); [None] when the results are bag-equal. *)

val pp : Format.formatter -> t -> unit
(** Header and at most 20 rows. *)
