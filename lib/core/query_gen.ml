open Storage
open Relalg
module L = Logical
module P = Optimizer.Pattern

type generated = { query : L.t; trials : int }

(* Generic placeholders usually become scans (as in the paper: "we can
   instantiate each of the generic operators with Get operators");
   occasionally a filtered scan for variety. *)
let any_subtree (ctx : Arggen.ctx) : L.t option =
  let get = Arggen.fresh_get ctx in
  if Prng.chance ctx.g 0.2 then
    match Arggen.add_filter ctx get with Some t -> Some t | None -> Some get
  else Some get

let rec instantiate ctx (p : P.t) : L.t option =
  match p with
  | P.Any -> any_subtree ctx
  | P.Op (kind, kid_patterns) -> (
    let ( let* ) = Option.bind in
    match (kind, kid_patterns) with
    | L.KGet, [] -> Some (Arggen.fresh_get ctx)
    | L.KFilter, [ kp ] ->
      let* c = instantiate ctx kp in
      Arggen.add_filter ctx c
    | L.KProject, [ kp ] ->
      let* c = instantiate ctx kp in
      Arggen.add_project ctx c
    | L.KJoin jk, [ lp; rp ] ->
      let* l = instantiate ctx lp in
      let* r = instantiate ctx rp in
      Arggen.add_join ctx jk l r
    | L.KGroupBy, [ kp ] ->
      let* c = instantiate ctx kp in
      Arggen.add_groupby ctx c
    | (L.KUnionAll | L.KUnion | L.KIntersect | L.KExcept), [ lp; rp ] ->
      (* Two generic branches: clone for guaranteed union compatibility.
         Structured branches: instantiate independently and align. *)
      let* l = instantiate ctx lp in
      let* r =
        match rp with
        | P.Any when Prng.chance ctx.g 0.8 -> Some (Arggen.refresh_labels l)
        | _ -> instantiate ctx rp
      in
      Arggen.add_setop ctx kind l r
    | L.KDistinct, [ kp ] ->
      let* c = instantiate ctx kp in
      Some (L.Distinct c)
    | L.KSort, [ kp ] ->
      let* c = instantiate ctx kp in
      Arggen.add_sort ctx c
    | L.KLimit, [ kp ] ->
      let* c = instantiate ctx kp in
      Some (L.Limit { count = 1 + Prng.int ctx.g 20; child = c })
    | _ -> None)

let compose p1 p2 =
  let substitutions base other =
    List.filter_map
      (fun i -> P.substitute_leaf base i other)
      (List.init (P.leaves base) Fun.id)
  in
  let roots =
    [ P.Op (L.KJoin L.Inner, [ p1; p2 ]);
      P.Op (L.KUnionAll, [ p1; p2 ]) ]
  in
  let candidates = substitutions p1 p2 @ substitutions p2 p1 @ roots in
  List.stable_sort (fun a b -> compare (P.size a) (P.size b)) candidates

let check fw query targets =
  match Framework.ruleset fw query with
  | Error _ -> false
  | Ok rs -> List.for_all (fun r -> Framework.SSet.mem r rs) targets

let finish ctx fw ~extra_ops ~targets ~trials query =
  let query = if extra_ops > 0 then Arggen.pad ctx query extra_ops else query in
  if check fw query targets then Some { query; trials } else None

(* Per-(method, target) generation telemetry: trials consumed, generation
   failures (trial budget exhausted) and wall time. Instantiation
   failures are counted at the call sites inside the trial loops. *)
type gen_instr = {
  trials_c : Obs.Metrics.counter;
  not_found_c : Obs.Metrics.counter;
  inst_fail_c : Obs.Metrics.counter;
  wall_ns : Obs.Metrics.histogram;
}

let gen_instr ~meth ~target =
  { trials_c = Obs.Metrics.counter ~label:target ("qgen." ^ meth ^ ".trials");
    not_found_c = Obs.Metrics.counter ~label:target ("qgen." ^ meth ^ ".not_found");
    inst_fail_c =
      Obs.Metrics.counter ~label:target ("qgen." ^ meth ^ ".instantiation_failures");
    wall_ns = Obs.Metrics.histogram ~label:target ("qgen." ^ meth ^ ".wall_ns") }

let instrumented ~meth ~target ~max_trials f =
  let instr = gen_instr ~meth ~target in
  Obs.Trace.with_span ("qgen." ^ meth)
    ~args:[ ("target", Obs.Json.String target) ]
    (fun () ->
      if not (Obs.Metrics.enabled ()) then f instr
      else begin
        let t0 = Obs.Clock.now_ns () in
        let result = f instr in
        Obs.Metrics.observe instr.wall_ns (Obs.Clock.ns_between t0 (Obs.Clock.now_ns ()));
        (match result with
        | Some r -> Obs.Metrics.add instr.trials_c r.trials
        | None ->
          Obs.Metrics.add instr.trials_c max_trials;
          Obs.Metrics.incr instr.not_found_c);
        result
      end)

let for_rule ?(max_trials = 50) ?(extra_ops = 0) fw g rule_name =
  match Framework.pattern_of fw rule_name with
  | None -> None
  | Some pattern ->
    instrumented ~meth:"pattern" ~target:rule_name ~max_trials (fun instr ->
        let ctx = { Arggen.g; cat = Framework.catalog fw } in
        let rec loop trials =
          if trials >= max_trials then None
          else
            let trials = trials + 1 in
            match instantiate ctx pattern with
            | None ->
              Obs.Metrics.incr instr.inst_fail_c;
              loop trials
            | Some query -> (
              match finish ctx fw ~extra_ops ~targets:[ rule_name ] ~trials query with
              | Some g -> Some g
              | None -> loop trials)
        in
        loop 0)

let for_pair ?(max_trials = 60) ?(extra_ops = 0) fw g (r1, r2) =
  match (Framework.pattern_of fw r1, Framework.pattern_of fw r2) with
  | Some p1, Some p2 ->
    instrumented ~meth:"pair" ~target:(r1 ^ "+" ^ r2) ~max_trials (fun instr ->
        let ctx = { Arggen.g; cat = Framework.catalog fw } in
        (* §3.2 composition derived from the DSL terms when both rules are
           DSL-backed and this framework registers the same patterns
           (identical candidate lists by construction — test_dsl.ml holds
           the two derivations equal); exported-pattern composition
           otherwise. *)
        let candidates =
          match (Optimizer.Rules.rdsl_of r1, Optimizer.Rules.rdsl_of r2) with
          | Some d1, Some d2
            when Dsl.Rdsl.pattern d1 = p1 && Dsl.Rdsl.pattern d2 = p2 ->
            Dsl.Rdsl.compose d1 d2
          | _ -> compose p1 p2
        in
        let n = List.length candidates in
        let rec loop trials =
          if trials >= max_trials then None
          else
            (* Round-robin over composite patterns, smallest first. *)
            let pattern = List.nth candidates (trials mod n) in
            let trials = trials + 1 in
            match instantiate ctx pattern with
            | None ->
              Obs.Metrics.incr instr.inst_fail_c;
              loop trials
            | Some query -> (
              match finish ctx fw ~extra_ops ~targets:[ r1; r2 ] ~trials query with
              | Some g -> Some g
              | None -> loop trials)
        in
        loop 0)
  | _ -> None

let relevant_for_rule ?(max_trials = 80) ?(extra_ops = 0) fw g rule_name =
  match Framework.pattern_of fw rule_name with
  | None -> None
  | Some pattern ->
    instrumented ~meth:"relevant" ~target:rule_name ~max_trials (fun instr ->
        let ctx = { Arggen.g; cat = Framework.catalog fw } in
        let relevant query =
          match
            ( Framework.optimize fw query,
              Framework.optimize fw ~disabled:[ rule_name ] query )
          with
          | Ok on, Ok off -> not (Optimizer.Physical.equal on.plan off.plan)
          | _ -> false
        in
        let rec loop trials =
          if trials >= max_trials then None
          else
            let trials = trials + 1 in
            match instantiate ctx pattern with
            | None ->
              Obs.Metrics.incr instr.inst_fail_c;
              loop trials
            | Some query -> (
              match finish ctx fw ~extra_ops ~targets:[ rule_name ] ~trials query with
              | Some g when relevant g.query -> Some g
              | _ -> loop trials)
        in
        loop 0)

let random_for_rules ?(max_trials = 300) ?(min_ops = 2) ?(max_ops = 10) fw g
    targets =
  instrumented ~meth:"random" ~target:(String.concat "+" targets) ~max_trials
    (fun _ ->
      let ctx = { Arggen.g; cat = Framework.catalog fw } in
      let rec loop trials =
        if trials >= max_trials then None
        else
          let trials = trials + 1 in
          let query = Random_gen.generate ~min_ops ~max_ops ctx in
          if check fw query targets then Some { query; trials } else loop trials
      in
      loop 0)
