open Storage
module L = Relalg.Logical
module A = Relalg.Aggregate

exception Exec_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Exec_error s)) fmt

module RowTbl = Hashtbl.Make (struct
  type t = Value.t array

  let equal a b = Resultset.compare_rows a b = 0
  let hash row = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 row
end)

(* Growable vector — the executor's output-row accumulator. *)
module Vec = struct
  type 'a t = { mutable arr : 'a array; mutable len : int }

  let create () = { arr = [||]; len = 0 }

  let push t x =
    if t.len = Array.length t.arr then begin
      let arr = Array.make (max 8 (2 * t.len)) x in
      Array.blit t.arr 0 arr 0 t.len;
      t.arr <- arr
    end;
    t.arr.(t.len) <- x;
    t.len <- t.len + 1

  let to_array t = Array.sub t.arr 0 t.len
end

let nulls n = Array.make n Value.Null
let key_has_null key = Array.exists Value.is_null key
let extract_key idx row = Array.map (fun i -> row.(i)) idx

let filter_rows p rows =
  let out = Vec.create () in
  Array.iter (fun row -> if p row then Vec.push out row) rows;
  Vec.to_array out

(* ------------------------------------------------------------------ *)
(* Morsels                                                             *)
(* ------------------------------------------------------------------ *)

(* Fixed-size chunking of an operator's input. Empty input yields zero
   morsels (not one empty morsel), so downstream maps are no-ops. *)
let morselize ~rows:m arr =
  if m < 1 then invalid_arg "Relops.morselize: morsel size < 1";
  let n = Array.length arr in
  Array.init ((n + m - 1) / m) (fun k ->
      Array.sub arr (k * m) (min m (n - (k * m))))

let morsels_c = Obs.Metrics.counter "executor.batch.morsels"
let morsel_rows_c = Obs.Metrics.counter "executor.batch.rows"

(* The morsel scheduler: chunk, map each morsel (through the pool when
   one is supplied), concatenate in task order. [Par.Pool.map_array]
   merges result slots by task index and re-raises the lowest failing
   task's exception, so both the output *and* the error surfaced are
   byte-identical to a sequential left-to-right scan for any jobs
   count. *)
let map_morsels pool ~rows f arr =
  let chunks = morselize ~rows arr in
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.add morsels_c (Array.length chunks);
    Obs.Metrics.add morsel_rows_c (Array.length arr)
  end;
  match chunks with
  | [||] -> [||]
  | [| only |] -> f only
  | chunks -> Array.concat (Array.to_list (Par.Pool.map_array pool f chunks))

let take_rows n rows = Array.sub rows 0 (min n (Array.length rows))

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

(* [make_agg compile agg] resolves the aggregate's argument expression
   once via [compile] and returns the per-group evaluator. NULL inputs
   are skipped by every aggregate except COUNT( * ). *)
let make_agg (compile : Relalg.Scalar.t -> Value.t array -> Value.t)
    (agg : A.t) : Value.t array array -> Value.t =
  let non_null f rows =
    List.rev
      (Array.fold_left
         (fun acc row ->
           let v = f row in
           if Value.is_null v then acc else v :: acc)
         [] rows)
  in
  match agg with
  | A.CountStar -> fun rows -> Value.Int (Array.length rows)
  | A.Count e ->
    let f = compile e in
    fun rows -> Value.Int (List.length (non_null f rows))
  | A.Sum e ->
    let f = compile e in
    fun rows ->
      (match non_null f rows with
      | [] -> Value.Null
      | v :: vs -> List.fold_left Value.add v vs)
  | A.Min e ->
    let f = compile e in
    fun rows ->
      (match non_null f rows with
      | [] -> Value.Null
      | v :: vs ->
        List.fold_left
          (fun a b -> if Value.compare_total b a < 0 then b else a)
          v vs)
  | A.Max e ->
    let f = compile e in
    fun rows ->
      (match non_null f rows with
      | [] -> Value.Null
      | v :: vs ->
        List.fold_left
          (fun a b -> if Value.compare_total b a > 0 then b else a)
          v vs)
  | A.Avg e ->
    let f = compile e in
    fun rows ->
      (match non_null f rows with
      | [] -> Value.Null
      | vs ->
        let total =
          List.fold_left
            (fun acc v ->
              match v with
              | Value.Int x -> acc +. float_of_int x
              | Value.Float x -> acc +. x
              | _ -> fail "AVG over non-numeric value")
            0.0 vs
        in
        Value.Float (total /. float_of_int (List.length vs)))

(* Hash grouping in first-appearance order of the keys; members keep
   input order. *)
let hash_groups kidx (rows : Value.t array array) :
    (Value.t array * Value.t array array) array =
  let table : Value.t array Vec.t RowTbl.t = RowTbl.create 64 in
  let order = Vec.create () in
  Array.iter
    (fun row ->
      let key = extract_key kidx row in
      match RowTbl.find_opt table key with
      | Some members -> Vec.push members row
      | None ->
        let members = Vec.create () in
        Vec.push members row;
        RowTbl.add table key members;
        Vec.push order key)
    rows;
  Array.map
    (fun key -> (key, Vec.to_array (RowTbl.find table key)))
    (Vec.to_array order)

(* Consecutive runs of equal keys (input sorted by keys). *)
let stream_groups kidx (rows : Value.t array array) :
    (Value.t array * Value.t array array) array =
  let groups = Vec.create () in
  let n = Array.length rows in
  let i = ref 0 in
  while !i < n do
    let key = extract_key kidx rows.(!i) in
    let j = ref (!i + 1) in
    while
      !j < n && Resultset.compare_rows (extract_key kidx rows.(!j)) key = 0
    do
      incr j
    done;
    Vec.push groups (key, Array.sub rows !i (!j - !i));
    i := !j
  done;
  Vec.to_array groups

(* One output row per group: keys then aggregate values. *)
let grouped_rows (agg_fns : (Value.t array array -> Value.t) array)
    (groups : (Value.t array * Value.t array array) array) =
  Array.map
    (fun (key, members) ->
      let nk = Array.length key and na = Array.length agg_fns in
      let out = Array.make (nk + na) Value.Null in
      Array.blit key 0 out 0 nk;
      for i = 0 to na - 1 do
        out.(nk + i) <- agg_fns.(i) members
      done;
      out)
    groups

(* ------------------------------------------------------------------ *)
(* Joins                                                               *)
(* ------------------------------------------------------------------ *)

let join_cols (kind : L.join_kind) left_cols right_cols =
  match kind with
  | L.Semi | L.AntiSemi -> left_cols
  | L.Inner | L.Cross | L.LeftOuter | L.RightOuter | L.FullOuter ->
    Array.append left_cols right_cols

(* Shared join finalization: [match_lists.(li)] holds the indices of right
   rows fully matching left row [li]. *)
let join_rows (kind : L.join_kind) ~left_arity ~right_arity
    (larr : Value.t array array) (rarr : Value.t array array)
    (match_lists : int list array) : Value.t array array =
  let right_matched = Array.make (Array.length rarr) false in
  let out = Vec.create () in
  let emit row = Vec.push out row in
  let combine li ri = Array.append larr.(li) rarr.(ri) in
  Array.iteri
    (fun li ms ->
      match kind with
      | L.Semi -> if ms <> [] then emit larr.(li)
      | L.AntiSemi -> if ms = [] then emit larr.(li)
      | L.Inner | L.Cross -> List.iter (fun ri -> emit (combine li ri)) ms
      | L.LeftOuter ->
        if ms = [] then emit (Array.append larr.(li) (nulls right_arity))
        else List.iter (fun ri -> emit (combine li ri)) ms
      | L.RightOuter ->
        List.iter
          (fun ri ->
            right_matched.(ri) <- true;
            emit (combine li ri))
          ms
      | L.FullOuter ->
        if ms = [] then emit (Array.append larr.(li) (nulls right_arity))
        else
          List.iter
            (fun ri ->
              right_matched.(ri) <- true;
              emit (combine li ri))
            ms)
    match_lists;
  (match kind with
  | L.RightOuter | L.FullOuter ->
    Array.iteri
      (fun ri matched ->
        if not matched then emit (Array.append (nulls left_arity) rarr.(ri)))
      right_matched
  | L.Semi | L.AntiSemi | L.Inner | L.Cross | L.LeftOuter -> ());
  Vec.to_array out

let nested_loops_matches (pred : Value.t array -> bool)
    (larr : Value.t array array) (rarr : Value.t array array) =
  Array.map
    (fun lrow ->
      let ms = ref [] in
      Array.iteri
        (fun ri rrow -> if pred (Array.append lrow rrow) then ms := ri :: !ms)
        rarr;
      List.rev !ms)
    larr

(* Equi-join by hashing the right side on its key columns. NULL keys
   never match (skipped on both sides); [residual] — when present — is
   checked over the combined row. Build and probe are split so the batch
   path can build once sequentially and probe left-side morsels in
   parallel. *)
let hash_build ~ridx (rarr : Value.t array array) : int list ref RowTbl.t =
  let table : int list ref RowTbl.t = RowTbl.create 64 in
  Array.iteri
    (fun ri rrow ->
      let key = extract_key ridx rrow in
      if not (key_has_null key) then
        match RowTbl.find_opt table key with
        | Some cell -> cell := ri :: !cell
        | None -> RowTbl.add table key (ref [ ri ]))
    rarr;
  table

let hash_probe_row table ~lidx ~(residual : (Value.t array -> bool) option)
    (rarr : Value.t array array) lrow =
  let check_residual ri =
    match residual with
    | None -> true
    | Some p -> p (Array.append lrow rarr.(ri))
  in
  let key = extract_key lidx lrow in
  if key_has_null key then []
  else
    match RowTbl.find_opt table key with
    | None -> []
    | Some cell -> List.filter check_residual (List.rev !cell)

let hash_matches ~lidx ~ridx ~(residual : (Value.t array -> bool) option)
    (larr : Value.t array array) (rarr : Value.t array array) =
  let table = hash_build ~ridx rarr in
  Array.map (hash_probe_row table ~lidx ~residual rarr) larr

(* Inner merge join over inputs already sorted on their keys. Rows with
   NULL keys sort first and can never match; they are skipped. *)
let merge_matches ~lidx ~ridx ~(residual : (Value.t array -> bool) option)
    (larr : Value.t array array) (rarr : Value.t array array) =
  let nl = Array.length larr and nr = Array.length rarr in
  let match_lists = Array.make nl [] in
  let key_cmp = Resultset.compare_rows in
  let li = ref 0 and ri = ref 0 in
  while !li < nl && !ri < nr do
    let lkey = extract_key lidx larr.(!li) in
    let rkey = extract_key ridx rarr.(!ri) in
    if key_has_null lkey then incr li
    else if key_has_null rkey then incr ri
    else
      let c = key_cmp lkey rkey in
      if c < 0 then incr li
      else if c > 0 then incr ri
      else begin
        (* Collect the equal-key groups on both sides. *)
        let l_end = ref !li in
        while
          !l_end < nl && key_cmp (extract_key lidx larr.(!l_end)) lkey = 0
        do
          incr l_end
        done;
        let r_end = ref !ri in
        while
          !r_end < nr && key_cmp (extract_key ridx rarr.(!r_end)) rkey = 0
        do
          incr r_end
        done;
        for i = !li to !l_end - 1 do
          let ms = ref [] in
          for j = !ri to !r_end - 1 do
            let ok =
              match residual with
              | None -> true
              | Some p -> p (Array.append larr.(i) rarr.(j))
            in
            if ok then ms := j :: !ms
          done;
          match_lists.(i) <- List.rev !ms
        done;
        li := !l_end;
        ri := !r_end
      end
  done;
  match_lists

(* ------------------------------------------------------------------ *)
(* Distinct and set operations                                         *)
(* ------------------------------------------------------------------ *)

let distinct_rows rows =
  let seen = RowTbl.create 64 in
  filter_rows
    (fun row ->
      if RowTbl.mem seen row then false
      else begin
        RowTbl.add seen row ();
        true
      end)
    rows

let row_set rows =
  let set = RowTbl.create 64 in
  Array.iter (fun row -> RowTbl.replace set row ()) rows;
  set

(* ------------------------------------------------------------------ *)
(* Sorting                                                             *)
(* ------------------------------------------------------------------ *)

let sort_compare (kidx : int array) (dirs : L.sort_dir array) a b =
  let rec go i =
    if i = Array.length kidx then 0
    else
      let c = Value.compare_total a.(kidx.(i)) b.(kidx.(i)) in
      let c = match dirs.(i) with L.Asc -> c | L.Desc -> -c in
      if c <> 0 then c else go (i + 1)
  in
  go 0
