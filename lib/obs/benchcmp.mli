(** Benchmark-history regression gate.

    Compares two bench result documents ([BENCH_results.json]) metric by
    metric against per-metric thresholds and classifies each as passed,
    regressed, or improved. Pure JSON-in/findings-out so the gate is
    unit-testable; [qtr bench-diff] is a thin CLI around
    {!compare_results} and exits nonzero when {!regressions} is
    non-empty.

    Metrics are addressed by [/]-separated paths into the document;
    a segment may carry a selector, ["runs[jobs=4]"], which picks from a
    JSON list the object whose member equals the given value. Booleans
    read as 1/0 so correctness flags share the float pipeline. *)

type direction = Higher_is_better | Lower_is_better

type kind =
  | Ratio  (** speedups, hit rates — unitless, machine-portable-ish *)
  | Seconds  (** wall clocks — noisiest, scaled hardest by [slack] *)
  | Flag  (** correctness booleans — zero tolerance, slack-immune *)
  | Count  (** cardinalities (reproducer counts, …) *)
  | Delta  (** near-zero metrics (e.g. overhead fractions) — absolute band *)

type spec = { path : string; dir : direction; kind : kind; threshold : float }
(** [threshold] is the allowed change in the bad direction — relative to
    [|old|] for {!Ratio}/{!Seconds}/{!Count} (0.25 = 25%), absolute for
    {!Delta}; {!Flag} ignores it. *)

type status =
  | Passed
  | Regressed
  | Improved
  | Missing_old  (** metric only in the new document (new metric) — ok *)
  | Missing_new  (** metric vanished from the new document — a regression *)

type finding = {
  spec : spec;
  old_v : float option;
  new_v : float option;
  change_pct : float;
  status : status;
}

val default_specs : spec list
(** The gate run in CI: engine/executor speedups, determinism and
    agreement flags, parallel scaling + attribution coverage, triage
    quality, per-experiment wall clocks. *)

val lookup : Json.t -> string -> float option
(** Resolve a metric path ([Int]/[Float]/[Bool] leaf) to a float. *)

val compare_results :
  ?specs:spec list -> ?slack:float -> old_doc:Json.t -> new_doc:Json.t -> unit ->
  finding list
(** [slack] multiplies every non-{!Flag} threshold — CI compares runs
    from different machines with e.g. [~slack:10.0], which keeps the
    flags strict while only catastrophic numeric changes fire. Metrics
    absent from both documents produce no finding. *)

val regressions : finding list -> finding list
(** The findings that should fail a gate ({!Regressed} and
    {!Missing_new}). *)

val extract : ?specs:spec list -> Json.t -> (string * float) list
(** The gate's metrics flattened to [(path, value)] — the key-metrics
    block of a [BENCH_history.jsonl] record. *)

val finding_json : finding -> Json.t
val findings_json : finding list -> Json.t
val pp_finding : Format.formatter -> finding -> unit
